// Cross-module integration tests: the places where two subsystems must
// agree about bytes or timestamps.
#include <gtest/gtest.h>

#include "livesim/core/broadcast_session.h"
#include "livesim/stats/accumulator.h"
#include "livesim/protocol/hls.h"
#include "livesim/util/rng.h"

namespace livesim {
namespace {

TEST(Integration, SessionPlaylistSurvivesTextRoundTrip) {
  // Run a real session, then push every edge's view of the stream through
  // the m3u8 codec: the structured and textual representations must agree.
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 45 * time::kSecond;
  cfg.hls_viewers = 6;
  cfg.rtmp_viewers = 0;
  cfg.seed = 31;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();

  const auto& playlist = session.ingest().playlist();
  ASSERT_FALSE(playlist.chunks.empty());
  const std::string text = protocol::render_playlist(playlist, "seg_");
  const auto parsed = protocol::parse_playlist(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->chunks.size(), playlist.chunks.size());
  for (std::size_t i = 0; i < playlist.chunks.size(); ++i) {
    EXPECT_EQ(parsed->chunks[i].seq, playlist.chunks[i].seq);
    EXPECT_EQ(parsed->chunks[i].completed_ts, playlist.chunks[i].completed_ts);
    EXPECT_EQ(parsed->chunks[i].size_bytes, playlist.chunks[i].size_bytes);
  }
  EXPECT_EQ(parsed->version, playlist.version);
}

TEST(Integration, PlaylistParserSurvivesMutations) {
  media::ChunkList list;
  list.version = 3;
  list.target_duration = 3 * time::kSecond;
  media::Chunk c;
  c.seq = 5;
  c.duration = 3 * time::kSecond;
  c.frame_count = 75;
  c.size_bytes = 123456;
  list.chunks.push_back(c);
  const std::string text = protocol::render_playlist(list, "c_");

  // Single-character mutations must never crash and either parse to
  // something or fail cleanly.
  Rng rng(8);
  int parsed_ok = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = text;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    mutated[pos] = static_cast<char>('0' + rng.uniform_int(0, 9));
    const auto result = protocol::parse_playlist(mutated);
    (result.has_value() ? parsed_ok : rejected) += 1;
  }
  EXPECT_GT(parsed_ok + rejected, 0);  // i.e., no crash across all trials
}

TEST(Integration, ChunkCompletionTimesMatchEdgeAvailability) {
  // Whatever an edge reports available must exist in the ingest's chunk
  // ledger and never precede its completion there.
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.hls_viewers = 5;
  cfg.rtmp_viewers = 0;
  cfg.crawler_pollers = true;
  cfg.seed = 32;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();

  ASSERT_FALSE(session.edges().empty());
  int checked = 0;
  for (const auto& [site, edge] : session.edges()) {
    for (const auto& [seq, available_at] : edge->availability()) {
      const auto completed = session.chunk_completed_at().find(seq);
      ASSERT_NE(completed, session.chunk_completed_at().end());
      EXPECT_GT(available_at, completed->second);
      // W2F stays within a couple of seconds even across continents.
      EXPECT_LT(time::to_seconds(available_at - completed->second), 3.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

TEST(Integration, ViewerResultsExposeAttachmentGeography) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 30 * time::kSecond;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 4;
  cfg.seed = 33;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  for (const auto& v : session.viewer_results()) {
    const auto& dc = catalog.get(v.attachment);
    if (v.hls) {
      EXPECT_EQ(dc.role, geo::CdnRole::kEdge);
      // Anycast really picked the nearest edge.
      const auto& nearest = catalog.nearest(v.location, geo::CdnRole::kEdge);
      EXPECT_EQ(nearest.id, v.attachment);
    } else {
      EXPECT_EQ(v.attachment, session.ingest_site());
    }
  }
}

TEST(Integration, ComponentDecompositionSumsToGroundTruth) {
  // The Figure 10 decomposition is only meaningful if the components sum
  // to what viewers actually experience: compare against the playback
  // schedule's direct capture->play measurement.
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 2 * time::kMinute;
  cfg.broadcaster_location = {34.42, -119.70};
  cfg.global_viewers = false;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 2;
  cfg.crawler_pollers = true;
  cfg.seed = 91;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  stats::Accumulator rtmp_truth, hls_truth;
  for (std::size_t i = 0; i < session.viewer_count(); ++i) {
    (session.viewer_is_hls(i) ? hls_truth : rtmp_truth)
        .merge(session.viewer_playback(i).end_to_end_s());
  }
  const double rtmp_sum = session.rtmp_breakdown().total_s();
  const double hls_sum = session.hls_breakdown().total_s();
  ASSERT_GT(rtmp_truth.count(), 1000u);
  ASSERT_GT(hls_truth.count(), 20u);
  EXPECT_NEAR(rtmp_sum, rtmp_truth.mean(), 0.15 * rtmp_truth.mean());
  EXPECT_NEAR(hls_sum, hls_truth.mean(), 0.15 * hls_truth.mean());
}

}  // namespace
}  // namespace livesim
