#include <gtest/gtest.h>

#include "livesim/net/link.h"

namespace livesim::net {
namespace {

TEST(Link, DelayAtLeastBase) {
  sim::Simulator sim;
  Link::Params p;
  p.base_delay = 10 * time::kMillisecond;
  p.bandwidth_bps = 0;  // no serialization term
  Link link(sim, p, Rng(1));
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(link.sample_delay(100), p.base_delay);
}

TEST(Link, SerializationScalesWithBytes) {
  sim::Simulator sim;
  Link::Params p;
  p.base_delay = 0;
  p.jitter_fraction = 0.0;
  p.bandwidth_bps = 8e6;  // 1 MB/s
  Link link(sim, p, Rng(2));
  EXPECT_NEAR(static_cast<double>(link.sample_delay(1000000)),
              1.0 * time::kSecond, 1000.0);
  EXPECT_NEAR(static_cast<double>(link.sample_delay(500000)),
              0.5 * time::kSecond, 1000.0);
}

TEST(Link, SendDeliversAfterDelay) {
  sim::Simulator sim;
  Link link(sim, Link::Params{}, Rng(3));
  TimeUs arrived = -1;
  const DurationUs d = link.send(100, [&] { arrived = sim.now(); });
  ASSERT_GT(d, 0);
  sim.run();
  EXPECT_EQ(arrived, d);
}

TEST(Link, LossDropsMessages) {
  sim::Simulator sim;
  Link::Params p;
  p.loss_rate = 0.5;
  Link link(sim, p, Rng(4));
  int delivered = 0, lost = 0;
  for (int i = 0; i < 2000; ++i) {
    if (link.send(10, [&] { ++delivered; }) < 0) ++lost;
  }
  sim.run();
  EXPECT_NEAR(lost, 1000, 100);
  EXPECT_EQ(delivered + lost, 2000);
}

TEST(FifoUplink, PreservesOrder) {
  sim::Simulator sim;
  FifoUplink::Params p;
  p.link = LastMileProfiles::wifi();
  FifoUplink uplink(sim, p, Rng(5));
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(i * 1000, [&, i] {
      uplink.send(5000, [&, i](TimeUs) { order.push_back(i); });
    });
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(FifoUplink, ArrivalTimeMatchesCallback) {
  sim::Simulator sim;
  FifoUplink uplink(sim, FifoUplink::Params{}, Rng(6));
  TimeUs reported = -1, actual = -1;
  const TimeUs predicted = uplink.send(1000, [&](TimeUs t) {
    reported = t;
    actual = sim.now();
  });
  sim.run();
  EXPECT_EQ(reported, actual);
  EXPECT_EQ(predicted, actual);
}

TEST(FifoUplink, OutagesDelayBursts) {
  // With heavy outages, some messages must be queued and arrive late.
  sim::Simulator sim;
  FifoUplink::Params p = LastMileProfiles::bursty_uplink();
  p.outage_rate_per_s = 0.5;
  p.mean_outage = 2 * time::kSecond;
  FifoUplink uplink(sim, p, Rng(7));

  DurationUs max_latency = 0;
  for (int i = 0; i < 500; ++i) {
    const TimeUs sent = i * 40 * time::kMillisecond;
    sim.schedule_at(sent, [&, sent] {
      uplink.send(2000, [&, sent](TimeUs t) {
        max_latency = std::max(max_latency, t - sent);
      });
    });
  }
  sim.run();
  EXPECT_GT(max_latency, time::kSecond);  // at least one multi-second stall
}

TEST(FifoUplink, NoOutagesMeansLowLatency) {
  sim::Simulator sim;
  FifoUplink::Params p;
  p.link = LastMileProfiles::wired();
  p.outage_rate_per_s = 0.0;
  FifoUplink uplink(sim, p, Rng(8));
  DurationUs max_latency = 0;
  for (int i = 0; i < 500; ++i) {
    const TimeUs sent = i * 40 * time::kMillisecond;
    sim.schedule_at(sent, [&, sent] {
      uplink.send(2000, [&, sent](TimeUs t) {
        max_latency = std::max(max_latency, t - sent);
      });
    });
  }
  sim.run();
  EXPECT_LT(max_latency, 100 * time::kMillisecond);
}

TEST(FifoUplink, BandwidthRampSlowsEarlyTraffic) {
  auto run = [](double initial_frac, DurationUs ramp) {
    sim::Simulator sim;
    FifoUplink::Params p;
    p.link = LastMileProfiles::wifi();
    p.link.jitter_fraction = 0.0;
    p.initial_bw_fraction = initial_frac;
    p.ramp_duration = ramp;
    FifoUplink uplink(sim, p, Rng(9));
    DurationUs total = 0;
    int n = 0;
    for (int i = 0; i < 100; ++i) {
      const TimeUs sent = i * 40 * time::kMillisecond;
      sim.schedule_at(sent, [&, sent] {
        uplink.send(20000, [&, sent](TimeUs t) {
          total += t - sent;
          ++n;
        });
      });
    }
    sim.run();
    return static_cast<double>(total) / n;
  };
  const double ramped = run(0.05, 20 * time::kSecond);
  const double full = run(1.0, 0);
  EXPECT_GT(ramped, 2.0 * full);
}

TEST(LastMileProfiles, OrderedByLatency) {
  EXPECT_LT(LastMileProfiles::wired().base_delay,
            LastMileProfiles::wifi().base_delay);
  EXPECT_LT(LastMileProfiles::wifi().base_delay,
            LastMileProfiles::lte().base_delay);
  // Expected outage seconds per second of streaming: bursty >> stable.
  const auto stable = LastMileProfiles::stable_uplink();
  const auto bursty = LastMileProfiles::bursty_uplink();
  EXPECT_GT(bursty.outage_rate_per_s * time::to_seconds(bursty.mean_outage),
            5.0 * stable.outage_rate_per_s *
                time::to_seconds(stable.mean_outage));
}

}  // namespace
}  // namespace livesim::net
