#include <gtest/gtest.h>

#include "livesim/cdn/resource_model.h"
#include "livesim/cdn/servers.h"
#include "livesim/cdn/w2f.h"
#include "livesim/media/encoder.h"
#include "livesim/stats/accumulator.h"

namespace livesim::cdn {
namespace {

TEST(ResourceModel, RtmpCpuScalesWithViewers) {
  ResourceModel m;
  double prev = 0;
  for (std::uint32_t v : {100u, 200u, 300u, 400u, 500u}) {
    const double cpu = m.rtmp_cpu_percent(v, 25.0);
    EXPECT_GT(cpu, prev);
    prev = cpu;
  }
}

TEST(ResourceModel, RtmpFarCostlierThanHlsAndGapGrows) {
  ResourceModel m;
  double prev_gap = 0;
  for (std::uint32_t v : {100u, 200u, 300u, 400u, 500u}) {
    const double rtmp = m.rtmp_cpu_percent(v, 25.0);
    const double hls = m.hls_cpu_percent(v, 25.0, 2.8, 3.0);
    EXPECT_GT(rtmp, 2.0 * hls) << v << " viewers";
    EXPECT_GT(rtmp - hls, prev_gap);
    prev_gap = rtmp - hls;
  }
}

TEST(ResourceModel, Figure14Anchors) {
  // At 500 viewers the paper's lab Wowza showed RTMP near CPU saturation
  // while HLS stayed modest.
  ResourceModel m;
  EXPECT_GT(m.rtmp_cpu_percent(500, 25.0), 70.0);
  EXPECT_LT(m.hls_cpu_percent(500, 25.0, 2.8, 3.0), 30.0);
}

TEST(ResourceModel, SmallerChunksCostMore) {
  ResourceModel m;
  // Smaller chunks -> more chunk builds and (coupled) faster polling.
  const double small = m.hls_cpu_percent(300, 25.0, 1.0, 1.0);
  const double big = m.hls_cpu_percent(300, 25.0, 3.0, 3.0);
  EXPECT_GT(small, big);
}

TEST(CpuMeter, AccumulatesCharges) {
  ResourceModel m;
  CpuMeter meter(m);
  meter.charge_frame_push();
  meter.charge_poll();
  EXPECT_DOUBLE_EQ(meter.busy_us(), m.frame_push_us + m.poll_serve_us);
  const double pct = meter.percent_over(time::kSecond);
  EXPECT_NEAR(pct, m.baseline_percent +
                       (m.frame_push_us + m.poll_serve_us) / 1e6 * 100.0,
              1e-9);
  EXPECT_EQ(meter.percent_over(0), 0.0);
}

class W2FTest : public ::testing::Test {
 protected:
  W2FTest()
      : catalog_(geo::DatacenterCatalog::paper_footprint()),
        model_(catalog_, geo::LatencyModel{}) {}

  DatacenterId ingest(const std::string& city) const {
    for (const auto* dc : catalog_.ingest_sites())
      if (dc->city == city) return dc->id;
    throw std::logic_error("no such ingest");
  }
  DatacenterId edge(const std::string& city) const {
    for (const auto* dc : catalog_.edge_sites())
      if (dc->city == city) return dc->id;
    throw std::logic_error("no such edge");
  }

  geo::DatacenterCatalog catalog_;
  W2FModel model_;
};

TEST_F(W2FTest, GatewayIsColocatedEdge) {
  EXPECT_EQ(model_.gateway_for(ingest("Ashburn")).city, "Ashburn");
  EXPECT_EQ(model_.gateway_for(ingest("Tokyo")).city, "Tokyo");
}

TEST_F(W2FTest, SaoPauloFallsBackToNearestEdge) {
  // No South-American edge in the 2015 footprint: Miami is the nearest.
  EXPECT_EQ(model_.gateway_for(ingest("Sao Paulo")).city, "Miami");
}

TEST_F(W2FTest, ColocatedFasterThanDistantByGap) {
  Rng rng(3);
  stats::Accumulator co, near, far;
  for (int i = 0; i < 300; ++i) {
    co.add(time::to_seconds(
        model_.sample_transfer(ingest("Ashburn"), edge("Ashburn"), 200000, rng)));
    near.add(time::to_seconds(
        model_.sample_transfer(ingest("Ashburn"), edge("New York"), 200000, rng)));
    far.add(time::to_seconds(
        model_.sample_transfer(ingest("Ashburn"), edge("Tokyo"), 200000, rng)));
  }
  // The paper's signature result: a >0.25 s gap between co-located pairs
  // and even nearby cities, caused by the gateway coordination step.
  EXPECT_GT(near.mean() - co.mean(), 0.25);
  EXPECT_GT(far.mean(), near.mean());
}

TEST(IngestServer, FansOutToAllSubscribersAndChunks) {
  sim::Simulator sim;
  IngestServer server(sim, DatacenterId{0}, media::Chunker::Params{},
                      ResourceModel{});
  int viewer1 = 0, viewer2 = 0;
  server.add_rtmp_subscriber([&](const media::VideoFrame&, TimeUs) { ++viewer1; });
  server.add_rtmp_subscriber([&](const media::VideoFrame&, TimeUs) { ++viewer2; });
  std::vector<media::Chunk> chunks;
  server.set_chunk_listener([&](const media::Chunk& c) { chunks.push_back(c); });

  media::FrameSource src(media::FrameSource::Params{}, Rng(4));
  for (int i = 0; i < 76; ++i) server.on_frame(src.next());
  EXPECT_EQ(viewer1, 76);
  EXPECT_EQ(viewer2, 76);
  EXPECT_EQ(server.frames_ingested(), 76u);
  ASSERT_EQ(chunks.size(), 1u);  // 75 frames = 3 s, sealed by frame 76
  EXPECT_EQ(chunks[0].frame_count, 75u);

  server.on_end_of_stream();
  ASSERT_EQ(chunks.size(), 2u);  // the partial chunk flushes
  EXPECT_EQ(chunks[1].frame_count, 1u);
  EXPECT_GT(server.cpu().busy_us(), 0.0);
}

class EdgeFixture : public ::testing::Test {
 protected:
  EdgeFixture() {
    edge_ = std::make_unique<EdgeServer>(
        sim_, DatacenterId{1},
        [this](std::function<void(EdgeServer::FetchResult)> done) {
          ++fetches_started_;
          sim_.schedule_in(fetch_delay_, [this, done = std::move(done)] {
            if (fail_next_fetches_ > 0) {
              --fail_next_fetches_;
              done(std::nullopt);
            } else {
              done(origin_chunks_);
            }
          });
        },
        ResourceModel{});
  }

  void add_origin_chunk(std::uint64_t seq) {
    media::Chunk c;
    c.seq = seq;
    c.duration = 3 * time::kSecond;
    c.size_bytes = 100000;
    origin_chunks_.push_back(c);
  }

  sim::Simulator sim_;
  std::vector<media::Chunk> origin_chunks_;
  DurationUs fetch_delay_ = 200 * time::kMillisecond;
  int fetches_started_ = 0;
  int fail_next_fetches_ = 0;
  std::unique_ptr<EdgeServer> edge_;
};

TEST_F(EdgeFixture, FreshCacheServesImmediately) {
  add_origin_chunk(0);
  edge_->on_expire_notice(0);
  int served = 0;
  edge_->on_poll(-1, [&](TimeUs, std::vector<media::Chunk> cs) {
    served = static_cast<int>(cs.size());
  });
  sim_.run();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(fetches_started_, 1);

  // Second poll: cache hit, no new fetch.
  int served2 = 0;
  edge_->on_poll(-1, [&](TimeUs, std::vector<media::Chunk> cs) {
    served2 = static_cast<int>(cs.size());
  });
  sim_.run();
  EXPECT_EQ(served2, 1);
  EXPECT_EQ(fetches_started_, 1);
}

TEST_F(EdgeFixture, PollCoalescingSingleFetch) {
  add_origin_chunk(0);
  edge_->on_expire_notice(0);
  int responses = 0;
  TimeUs first_response = 0;
  for (int i = 0; i < 10; ++i) {
    edge_->on_poll(-1, [&](TimeUs at, std::vector<media::Chunk>) {
      ++responses;
      first_response = at;
    });
  }
  sim_.run();
  EXPECT_EQ(responses, 10);
  EXPECT_EQ(fetches_started_, 1);  // all ten coalesced into one origin pull
  EXPECT_EQ(first_response, fetch_delay_);
  EXPECT_EQ(edge_->origin_fetches(), 1u);
}

TEST_F(EdgeFixture, ClientCursorFiltersOldChunks) {
  add_origin_chunk(0);
  add_origin_chunk(1);
  add_origin_chunk(2);
  edge_->on_expire_notice(2);
  std::vector<std::uint64_t> got;
  edge_->on_poll(0, [&](TimeUs, std::vector<media::Chunk> cs) {
    for (const auto& c : cs) got.push_back(c.seq);
  });
  sim_.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(EdgeFixture, AvailabilityRecorded) {
  add_origin_chunk(0);
  edge_->on_expire_notice(0);
  edge_->on_poll(-1, [](TimeUs, std::vector<media::Chunk>) {});
  sim_.run();
  ASSERT_EQ(edge_->availability().count(0), 1u);
  EXPECT_EQ(edge_->availability().at(0), fetch_delay_);
}

TEST_F(EdgeFixture, StaleWithoutNoticeServesCachedData) {
  add_origin_chunk(0);
  edge_->on_expire_notice(0);
  edge_->on_poll(-1, [](TimeUs, std::vector<media::Chunk>) {});
  sim_.run();

  // A new chunk exists at the origin but no expiry notice arrived yet:
  // the edge serves its (stale) cache without fetching.
  add_origin_chunk(1);
  std::vector<std::uint64_t> got;
  edge_->on_poll(-1, [&](TimeUs, std::vector<media::Chunk> cs) {
    for (const auto& c : cs) got.push_back(c.seq);
  });
  sim_.run();
  EXPECT_EQ(got, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(fetches_started_, 1);
}

TEST_F(EdgeFixture, FetchFailureRetriesThenServes) {
  add_origin_chunk(0);
  edge_->on_expire_notice(0);
  fail_next_fetches_ = 2;  // two transient failures, then success
  int served = 0;
  TimeUs served_at = 0;
  edge_->on_poll(-1, [&](TimeUs at, std::vector<media::Chunk> cs) {
    served = static_cast<int>(cs.size());
    served_at = at;
  });
  sim_.run();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(edge_->fetch_failures(), 2u);
  EXPECT_EQ(fetches_started_, 3);
  // Two backoffs (250 + 500 ms) plus three fetch latencies.
  EXPECT_GE(served_at, 3 * fetch_delay_ + 750 * time::kMillisecond);
}

TEST_F(EdgeFixture, FetchGivesUpAfterMaxAttemptsAndServesStale) {
  add_origin_chunk(0);
  edge_->on_expire_notice(0);
  edge_->set_retry(100 * time::kMillisecond, 2);
  fail_next_fetches_ = 10;  // origin is down
  bool responded = false;
  std::size_t got = 99;
  edge_->on_poll(-1, [&](TimeUs, std::vector<media::Chunk> cs) {
    responded = true;
    got = cs.size();
  });
  sim_.run();
  EXPECT_TRUE(responded);       // the poller is not left hanging
  EXPECT_EQ(got, 0u);           // ...but gets the (empty) stale cache
  EXPECT_EQ(edge_->fetch_failures(), 2u);

  // Origin recovers: the next poll triggers a fresh fetch and succeeds.
  fail_next_fetches_ = 0;
  int served = 0;
  edge_->on_poll(-1, [&](TimeUs, std::vector<media::Chunk> cs) {
    served = static_cast<int>(cs.size());
  });
  sim_.run();
  EXPECT_EQ(served, 1);
}

}  // namespace
}  // namespace livesim::cdn
