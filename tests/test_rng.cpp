#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "livesim/util/rng.h"

namespace livesim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    saw_lo |= v == 2;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(11);
  std::map<std::int64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 5)];
  for (const auto& [v, c] : counts)
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 6.0, 0.01) << "value " << v;
}

TEST(Rng, NormalMeanAndStddev) {
  Rng rng(12);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(14);
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal(std::log(50.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 50.0, 3.0);
}

TEST(Rng, ParetoLowerBoundAndTail) {
  Rng rng(15);
  double max = 0;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.pareto(2.0, 1.2);
    ASSERT_GE(x, 2.0);
    max = std::max(max, x);
  }
  EXPECT_GT(max, 100.0);  // heavy tail reaches far
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(16);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.2));
  EXPECT_NEAR(sum / n, 4.2, 0.1);
}

TEST(Rng, PoissonMeanLarge) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(250.0));
  EXPECT_NEAR(sum / n, 250.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(18);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(20);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // The fork and the parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Zipf, SingleElement) {
  ZipfSampler z(1, 1.2);
  Rng rng(22);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1);
}

struct ZipfCase {
  std::int64_t n;
  double s;
};

class ZipfProperty : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfProperty, InRangeAndRankOrdered) {
  const auto [n, s] = GetParam();
  ZipfSampler z(n, s);
  Rng rng(23);
  std::map<std::int64_t, int> counts;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const auto r = z.sample(rng);
    ASSERT_GE(r, 1);
    ASSERT_LE(r, n);
    ++counts[r];
  }
  // Rank 1 must be the most frequent outcome.
  int max_count = 0;
  for (const auto& [r, c] : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[1], max_count);
  // Frequency of rank 1 vs rank 2 should be ~2^s.
  if (counts[2] > 500) {
    const double ratio =
        static_cast<double>(counts[1]) / static_cast<double>(counts[2]);
    EXPECT_NEAR(ratio, std::pow(2.0, s), 0.35 * std::pow(2.0, s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfProperty,
    ::testing::Values(ZipfCase{10, 0.8}, ZipfCase{10, 1.0}, ZipfCase{100, 1.2},
                      ZipfCase{1000, 0.9}, ZipfCase{100000, 1.05},
                      ZipfCase{1000000, 1.2}, ZipfCase{50, 2.0}));

}  // namespace
}  // namespace livesim
