#include <gtest/gtest.h>

#include <fstream>
#include <unordered_set>

#include "livesim/stats/csv.h"
#include "livesim/util/ids.h"
#include "livesim/util/time.h"

namespace livesim {
namespace {

TEST(Time, ConversionRoundTrips) {
  EXPECT_EQ(time::from_seconds(1.5), 1'500'000);
  EXPECT_EQ(time::from_millis(2.5), 2'500);
  EXPECT_DOUBLE_EQ(time::to_seconds(3 * time::kSecond), 3.0);
  EXPECT_DOUBLE_EQ(time::to_millis(time::kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(time::to_seconds(time::from_seconds(12.345)), 12.345);
}

TEST(Time, UnitRelations) {
  EXPECT_EQ(time::kSecond, 1000 * time::kMillisecond);
  EXPECT_EQ(time::kMinute, 60 * time::kSecond);
  EXPECT_EQ(time::kHour, 60 * time::kMinute);
  EXPECT_EQ(time::kDay, 24 * time::kHour);
}

TEST(Time, DayIndex) {
  EXPECT_EQ(time::day_index(0), 0);
  EXPECT_EQ(time::day_index(time::kDay - 1), 0);
  EXPECT_EQ(time::day_index(time::kDay), 1);
  EXPECT_EQ(time::day_index(10 * time::kDay + 5), 10);
}

TEST(Ids, DefaultIsInvalid) {
  BroadcastId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(BroadcastId{7}.valid());
}

TEST(Ids, ComparisonAndOrdering) {
  EXPECT_EQ(UserId{3}, UserId{3});
  EXPECT_NE(UserId{3}, UserId{4});
  EXPECT_LT(UserId{3}, UserId{4});
}

TEST(Ids, TypesAreDistinct) {
  // Compile-time property: BroadcastId and UserId do not interconvert.
  static_assert(!std::is_convertible_v<BroadcastId, UserId>);
  static_assert(!std::is_convertible_v<std::uint64_t, BroadcastId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<DatacenterId> set;
  set.insert(DatacenterId{1});
  set.insert(DatacenterId{2});
  set.insert(DatacenterId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Csv, RendersHeaderAndRows) {
  stats::CsvWriter w({"x", "rtmp", "hls"});
  w.add_row({0.0, 0.1, 0.2});
  w.add_row({1.0, 0.5, 0.25});
  const std::string text = w.render();
  EXPECT_EQ(text, "x,rtmp,hls\n0,0.1,0.2\n1,0.5,0.25\n");
}

TEST(Csv, RejectsBadShape) {
  EXPECT_THROW(stats::CsvWriter({}), std::invalid_argument);
  stats::CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({1.0}), std::invalid_argument);
}

TEST(Csv, WriteDisabledWithoutDir) {
  stats::CsvWriter w({"a"});
  w.add_row({1.0});
  EXPECT_FALSE(w.write("", "test").has_value());
}

TEST(Csv, WritesToDirectory) {
  stats::CsvWriter w({"a", "b"});
  w.add_row({1.5, 2.5});
  const auto path = w.write("/tmp", "livesim_csv_test");
  ASSERT_TRUE(path.has_value());
  std::ifstream in(*path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
}

}  // namespace
}  // namespace livesim
