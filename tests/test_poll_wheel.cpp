// The flash-crowd fast-path battery (ctest binary: livesim_poll_wheel_tests).
//
// Three layers of contract are pinned here:
//  1. PollWheel unit semantics: grid quantization, attach-order fan-out,
//     churn safety (detach during fan-out, attach during fan-out, stale
//     handles against recycled slots), and the empty-wheel-holds-no-event
//     invariant the soak test's drained-queue pin relies on.
//  2. Wheel-vs-timer equivalence: a randomized churn schedule driven
//     through a PollWheel and through one-PeriodicProcess-per-member
//     timers produces the identical (time, tag) tick sequence; a full
//     BroadcastSession with poll_wheel on/off produces byte-identical
//     ViewerResults through clean runs, ingest crashes, edge blackouts,
//     corruption windows, and capacity spills.
//  3. The solo-retry demotion lane (hls_poll_retry): off by default and
//     bit-inert when enabled on a fault-free run; a timed-out poll demotes
//     the viewer to backed-off solo attempts; give-up is terminal until
//     failover rescues the viewer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "livesim/core/broadcast_session.h"
#include "livesim/fault/scenario.h"
#include "livesim/geo/datacenters.h"
#include "livesim/sim/poll_wheel.h"
#include "livesim/sim/simulator.h"
#include "livesim/util/rng.h"

namespace {
using namespace livesim;

// --- 1. PollWheel unit semantics --------------------------------------

using Fired = std::vector<std::pair<TimeUs, std::uint64_t>>;

TEST(PollWheel, EmptyWheelSchedulesNothing) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(wheel.size(), 0u);
  sim.run();  // drains instantly: a zero-member wheel never fires
  EXPECT_EQ(wheel.ticks(), 0u);
}

TEST(PollWheel, GeometryIsSlotWidthTimesBuckets) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  EXPECT_EQ(wheel.slot_width(), 250);
  EXPECT_EQ(wheel.effective_period(), 1000);
  EXPECT_EQ(wheel.buckets(), 4u);
  // The 2.8 s / 64 session default divides exactly.
  sim::PollWheel hls(sim, time::from_seconds(2.8), 64);
  EXPECT_EQ(hls.slot_width(), 43750);
  EXPECT_EQ(hls.effective_period(), time::from_seconds(2.8));
  // A non-dividing period floors the width; the effective rotation is
  // what callers must poll at, not the requested period.
  sim::PollWheel odd(sim, 1000, 3);
  EXPECT_EQ(odd.slot_width(), 333);
  EXPECT_EQ(odd.effective_period(), 999);
}

TEST(PollWheel, QuantizeSnapsToGridStrictlyAfterNow) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  EXPECT_EQ(wheel.quantize(0), 250);    // never "now", even at t=0
  EXPECT_EQ(wheel.quantize(1), 250);
  EXPECT_EQ(wheel.quantize(250), 250);
  EXPECT_EQ(wheel.quantize(251), 500);
  // Advance the clock: phases at or before now snap to the next boundary
  // strictly after it.
  sim.schedule_at(600, [] {});
  sim.run();
  ASSERT_EQ(sim.now(), 600);
  EXPECT_EQ(wheel.quantize(250), 750);
  EXPECT_EQ(wheel.quantize(600), 750);
  EXPECT_EQ(wheel.quantize(750), 750);
  EXPECT_EQ(wheel.quantize(900), 1000);  // off-grid raw snaps up
}

TEST(PollWheel, SingleMemberTicksEveryEffectivePeriod) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  Fired fired;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    fired.emplace_back(t, tag);
  });
  wheel.attach(wheel.quantize(100), 7);
  sim.run_until(3250);
  const Fired expect{{250, 7}, {1250, 7}, {2250, 7}, {3250, 7}};
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(wheel.ticks(), 4u);  // one bucket fan-out per rotation
}

TEST(PollWheel, FanoutVisitsBucketMembersInAttachOrder) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  Fired fired;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    fired.emplace_back(t, tag);
  });
  for (std::uint64_t tag : {31u, 7u, 19u})  // same bucket, in this order
    wheel.attach(wheel.quantize(0), tag);
  sim.run_until(1250);  // two rotations of bucket 1
  const Fired expect{{250, 31}, {250, 7}, {250, 19},
                     {1250, 31}, {1250, 7}, {1250, 19}};
  EXPECT_EQ(fired, expect);  // re-arms preserve the order, too
}

TEST(PollWheel, DetachedMemberStopsAndEmptyWheelDropsItsEvent) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  std::uint64_t ticks_seen = 0;
  wheel.set_fanout(
      [&](TimeUs, std::uint64_t, sim::CohortSlot) { ++ticks_seen; });
  const auto s = wheel.attach(wheel.quantize(0), 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(250);
  EXPECT_EQ(ticks_seen, 1u);
  EXPECT_TRUE(wheel.detach(s));
  // The wheel emptied: its pending event is cancelled on the spot, so a
  // drained simulation holds no wheel events (the soak-test invariant).
  EXPECT_EQ(sim.pending(), 0u);
  sim.run();
  EXPECT_EQ(ticks_seen, 1u);
}

TEST(PollWheel, ReattachAfterWheelEmptiedReschedules) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  Fired fired;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    fired.emplace_back(t, tag);
  });
  const auto s = wheel.attach(wheel.quantize(0), 1);
  wheel.detach(s);
  ASSERT_EQ(sim.pending(), 0u);
  wheel.attach(wheel.quantize(0), 2);
  sim.run_until(300);
  const Fired expect{{250, 2}};
  EXPECT_EQ(fired, expect);
}

TEST(PollWheel, MemberMayDetachItselfDuringItsOwnFanout) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  std::vector<sim::CohortSlot> slots(3);
  Fired fired;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot s) {
    fired.emplace_back(t, tag);
    if (tag == 1) {
      EXPECT_TRUE(wheel.detach(s));  // one-shot member
    }
  });
  for (std::uint64_t tag : {0u, 1u, 2u})
    slots[tag] = wheel.attach(wheel.quantize(0), tag);
  sim.run_until(1250);
  const Fired expect{{250, 0}, {250, 1}, {250, 2}, {1250, 0}, {1250, 2}};
  EXPECT_EQ(fired, expect);
  EXPECT_FALSE(wheel.attached(slots[1]));
  EXPECT_EQ(wheel.size(), 2u);
}

TEST(PollWheel, DetachingTheUpcomingMemberMidFanoutSkipsIt) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  std::vector<sim::CohortSlot> slots(3);
  Fired fired;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    fired.emplace_back(t, tag);
    // During member 0's first visit, unlink member 1 -- the exact slot
    // the fan-out cursor points at next.
    if (tag == 0 && t == 250) {
      EXPECT_TRUE(wheel.detach(slots[1]));
    }
  });
  for (std::uint64_t tag : {0u, 1u, 2u})
    slots[tag] = wheel.attach(wheel.quantize(0), tag);
  sim.run_until(1250);
  const Fired expect{{250, 0}, {250, 2}, {1250, 0}, {1250, 2}};
  EXPECT_EQ(fired, expect);
}

TEST(PollWheel, AttachDuringOwnBucketFanoutWaitsOneRotation) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  Fired fired;
  bool attached_late = false;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    fired.emplace_back(t, tag);
    if (tag == 1 && !attached_late) {
      attached_late = true;
      // Lands in the bucket that is firing RIGHT NOW (same phase, one
      // rotation out). Appended at the tail behind member 2, so the
      // running cursor WILL walk onto it in this very pass -- the
      // per-slot first-due gate must skip it until the next rotation.
      wheel.attach(wheel.quantize(sim.now() + wheel.effective_period()), 99);
    }
  });
  wheel.attach(wheel.quantize(0), 1);
  wheel.attach(wheel.quantize(0), 2);
  sim.run_until(1250);
  const Fired expect{{250, 1}, {250, 2},
                     {1250, 1}, {1250, 2}, {1250, 99}};
  EXPECT_EQ(fired, expect);
}

TEST(PollWheel, StaleHandlesAreInertAgainstRecycledSlots) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  wheel.set_fanout([](TimeUs, std::uint64_t, sim::CohortSlot) {});
  const auto s = wheel.attach(wheel.quantize(0), 5);
  EXPECT_TRUE(wheel.attached(s));
  EXPECT_EQ(wheel.tag(s), 5u);
  EXPECT_TRUE(wheel.detach(s));
  EXPECT_FALSE(wheel.detach(s));  // double-detach: refused
  EXPECT_FALSE(wheel.attached(s));
  EXPECT_FALSE(wheel.outstanding(s));

  // The freed slot is recycled for the next member under a bumped
  // generation; the stale handle must not read or write the new tenant.
  const auto s2 = wheel.attach(wheel.quantize(0), 6);
  ASSERT_EQ(s2.index, s.index);
  ASSERT_NE(s2.generation, s.generation);
  wheel.set_outstanding(s, true);  // stale write: must be a no-op
  EXPECT_FALSE(wheel.outstanding(s2));
  EXPECT_FALSE(wheel.detach(s));
  EXPECT_TRUE(wheel.attached(s2));
  EXPECT_EQ(wheel.tag(s2), 6u);
}

TEST(PollWheel, OutstandingFlagIsPerSlot) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  const auto a = wheel.attach(wheel.quantize(0), 1);
  const auto b = wheel.attach(wheel.quantize(300), 2);
  EXPECT_FALSE(wheel.outstanding(a));
  wheel.set_outstanding(a, true);
  EXPECT_TRUE(wheel.outstanding(a));
  EXPECT_FALSE(wheel.outstanding(b));
  wheel.set_outstanding(a, false);
  wheel.set_outstanding(b, true);
  EXPECT_FALSE(wheel.outstanding(a));
  EXPECT_TRUE(wheel.outstanding(b));
}

TEST(PollWheel, MidFanoutMigrationMovesAMemberBetweenWheels) {
  // Two edges, two wheels. During wheel A's fan-out the member migrates:
  // detach from A, attach to B. It must never tick on A again and must
  // tick on B at its fresh quantized phase.
  sim::Simulator sim;
  sim::PollWheel a(sim, 1000, 4);
  sim::PollWheel b(sim, 1000, 4);
  Fired on_a, on_b;
  bool migrated = false;
  sim::CohortSlot slot_b;
  a.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot s) {
    on_a.emplace_back(t, tag);
    if (!migrated) {
      migrated = true;
      EXPECT_TRUE(a.detach(s));
      slot_b = b.attach(b.quantize(sim.now() + 100), tag);
    }
  });
  b.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    on_b.emplace_back(t, tag);
  });
  a.attach(a.quantize(0), 42);
  sim.run_until(2000);
  const Fired expect_a{{250, 42}};
  const Fired expect_b{{500, 42}, {1500, 42}};
  EXPECT_EQ(on_a, expect_a);
  EXPECT_EQ(on_b, expect_b);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_TRUE(b.attached(slot_b));
}

// --- 2a. Randomized churn: wheel vs per-member timers -----------------

// One churn schedule -- attaches and detaches at randomized instants --
// driven through a PollWheel in one simulation and through
// one-PeriodicProcess-per-member timers in another. The observable tick
// sequences (time, tag) must be identical, element for element: this is
// the ordering contract the session's wheels-on/off bit-identity rests
// on.
struct ChurnOp {
  TimeUs at;
  bool attach;
  std::uint64_t tag;
  TimeUs raw_phase;  // attach only
};

std::vector<ChurnOp> churn_schedule(std::uint64_t seed, std::size_t members,
                                    TimeUs horizon, DurationUs period) {
  Rng rng(seed);
  std::vector<ChurnOp> ops;
  for (std::uint64_t tag = 0; tag < members; ++tag) {
    // Join at an off-grid instant, poll phase anywhere in one period.
    const auto join =
        static_cast<TimeUs>(rng.uniform() * static_cast<double>(horizon / 2));
    const auto phase = join + static_cast<TimeUs>(
                                  rng.uniform() * static_cast<double>(period));
    ops.push_back({join, true, tag, phase});
    if (rng.bernoulli(0.6)) {  // most members also leave
      const auto leave =
          join + 1 +
          static_cast<TimeUs>(rng.uniform() *
                              static_cast<double>(horizon - join - 1));
      ops.push_back({leave, false, tag, 0});
    }
  }
  std::sort(ops.begin(), ops.end(), [](const ChurnOp& x, const ChurnOp& y) {
    if (x.at != y.at) return x.at < y.at;
    return x.tag < y.tag;
  });
  return ops;
}

Fired run_churn_on_wheel(const std::vector<ChurnOp>& ops, TimeUs horizon,
                         DurationUs period, std::uint32_t buckets) {
  sim::Simulator sim;
  sim::PollWheel wheel(sim, period, buckets);
  Fired fired;
  wheel.set_fanout([&](TimeUs t, std::uint64_t tag, sim::CohortSlot) {
    fired.emplace_back(t, tag);
  });
  std::vector<sim::CohortSlot> slots(256);
  for (const ChurnOp& op : ops) {
    sim.schedule_at(op.at, [&, op] {
      if (op.attach)
        slots[op.tag] = wheel.attach(wheel.quantize(op.raw_phase), op.tag);
      else
        wheel.detach(slots[op.tag]);
    });
  }
  sim.run_until(horizon);
  return fired;
}

Fired run_churn_on_timers(const std::vector<ChurnOp>& ops, TimeUs horizon,
                          DurationUs period, std::uint32_t buckets) {
  sim::Simulator sim;
  const DurationUs width = std::max<DurationUs>(1, period / buckets);
  const DurationUs effective = width * buckets;
  Fired fired;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> procs(256);
  for (const ChurnOp& op : ops) {
    sim.schedule_at(op.at, [&, op] {
      if (op.attach) {
        TimeUs t = ((op.raw_phase + width - 1) / width) * width;
        if (t <= sim.now()) t = (sim.now() / width + 1) * width;
        procs[op.tag] = std::make_unique<sim::PeriodicProcess>(
            sim, t, effective, [&fired, &sim, op](sim::PeriodicProcess&) {
              fired.emplace_back(sim.now(), op.tag);
            });
      } else {
        procs[op.tag].reset();
      }
    });
  }
  sim.run_until(horizon);
  procs.clear();
  return fired;
}

TEST(PollWheelChurn, RandomizedScheduleMatchesPerMemberTimersExactly) {
  constexpr DurationUs kPeriod = 1000;
  constexpr std::uint32_t kBuckets = 8;
  constexpr TimeUs kHorizon = 20000;  // 20 rotations
  // Same-instant ticks are compared as a set (sorted by tag): when an
  // attach lands between an older member's re-arms, the timer's firing
  // order within that instant is scheduling order while the wheel's is
  // attach order. Nothing observable depends on intra-instant order --
  // each tick draws only from per-member state -- and the strict-order
  // contract for a stable cohort is pinned by
  // FanoutVisitsBucketMembersInAttachOrder above.
  auto canonical = [](Fired f) {
    std::sort(f.begin(), f.end());
    return f;
  };
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    const auto ops = churn_schedule(seed, 40, kHorizon, kPeriod);
    const auto wheel = run_churn_on_wheel(ops, kHorizon, kPeriod, kBuckets);
    const auto timers = run_churn_on_timers(ops, kHorizon, kPeriod, kBuckets);
    ASSERT_FALSE(wheel.empty());
    EXPECT_EQ(canonical(wheel), canonical(timers))
        << "churn divergence at seed " << seed;
  }
}

TEST(PollWheelChurn, HeavyChurnKeepsLedgerConsistent) {
  // Attach/detach hammering with slot recycling: every live member ticks
  // exactly once per rotation it is attached for, and size() tracks the
  // reference count at every step.
  sim::Simulator sim;
  sim::PollWheel wheel(sim, 1000, 4);
  std::uint64_t ticks = 0;
  wheel.set_fanout([&](TimeUs, std::uint64_t, sim::CohortSlot) { ++ticks; });
  Rng rng(7);
  std::vector<sim::CohortSlot> live;
  for (int round = 0; round < 200; ++round) {
    if (rng.bernoulli(0.55) || live.empty()) {
      live.push_back(
          wheel.attach(wheel.quantize(sim.now() + static_cast<TimeUs>(
                                          rng.uniform() * 1000.0)),
                       static_cast<std::uint64_t>(round)));
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform() * static_cast<double>(live.size()));
      EXPECT_TRUE(wheel.detach(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(wheel.size(), live.size());
    for (const auto& s : live) EXPECT_TRUE(wheel.attached(s));
    // Let some time pass so slots tick and recycle under churn.
    sim.run_until(sim.now() + 300);
  }
  EXPECT_GT(ticks, 0u);
  for (const auto& s : live) EXPECT_TRUE(wheel.detach(s));
  EXPECT_EQ(sim.pending(), 0u);  // empty wheel holds no event
}

// --- 2b. Session-level wheels-on/off bit-identity ---------------------

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return mix(h, bits);
}

std::uint64_t session_fingerprint(const core::BroadcastSession& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& v : s.viewer_results()) {
    h = mix(h, v.hls ? 1 : 0);
    h = mix(h, v.orphaned ? 1 : 0);
    h = mix(h, v.attachment.value);
    h = mix_double(h, v.stall_ratio);
    h = mix_double(h, v.mean_buffering_s);
    h = mix(h, v.units_played);
    h = mix(h, v.units_discarded);
  }
  h = mix(h, s.rtmp_failovers());
  h = mix(h, s.edge_failovers());
  h = mix(h, s.orphaned_viewers());
  h = mix(h, s.edge_spills());
  h = mix(h, s.corrupted_downloads());
  h = mix_double(h, s.hls_breakdown().buffering_s.mean());
  h = mix_double(h, s.rtmp_breakdown().buffering_s.mean());
  h = mix_double(h, s.failover_latency_s().mean());
  h = mix_double(h, s.edge_failover_latency_s().mean());
  return h;
}

std::uint64_t run_session(const core::SessionConfig& cfg) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  return session_fingerprint(session);
}

std::uint64_t run_session_wheel(core::SessionConfig cfg, bool wheel) {
  cfg.poll_wheel = wheel;
  return run_session(cfg);
}

TEST(WheelDifferential, CleanRunByteIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {1, 9, 23, 77}) {
    core::SessionConfig cfg;
    cfg.broadcast_len = 40 * time::kSecond;
    cfg.rtmp_viewers = 2;
    cfg.hls_viewers = 5;
    cfg.seed = seed;
    EXPECT_EQ(run_session_wheel(cfg, true), run_session_wheel(cfg, false))
        << "wheels-on/off diverged at seed " << seed;
  }
}

TEST(WheelDifferential, IngestCrashMigrationByteIdentical) {
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 3;
  cfg.hls_viewers = 2;
  cfg.seed = 4;
  cfg.faults.add({20 * time::kSecond, fault::FaultKind::kIngestCrash,
                  10 * time::kSecond});
  EXPECT_EQ(run_session_wheel(cfg, true), run_session_wheel(cfg, false));
}

TEST(WheelDifferential, EdgeBlackoutFailoverByteIdentical) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 4;
  cfg.global_viewers = false;
  cfg.seed = 5;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  EXPECT_EQ(run_session_wheel(cfg, true), run_session_wheel(cfg, false));
}

TEST(WheelDifferential, CapacitySpillByteIdentical) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 6;
  cfg.global_viewers = false;
  cfg.edge_capacity = 2;
  cfg.seed = 5;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  EXPECT_EQ(run_session_wheel(cfg, true), run_session_wheel(cfg, false));
}

TEST(WheelDifferential, CorruptionWindowByteIdentical) {
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 3;
  cfg.seed = 8;
  fault::FaultEvent corrupt;
  corrupt.at = 10 * time::kSecond;
  corrupt.kind = fault::FaultKind::kChunkCorruption;
  corrupt.duration = 40 * time::kSecond;
  corrupt.magnitude = 1.0;
  cfg.faults.add(corrupt);
  EXPECT_EQ(run_session_wheel(cfg, true), run_session_wheel(cfg, false));
}

TEST(WheelDifferential, WheelPathIsRunToRunDeterministic) {
  core::SessionConfig cfg;
  cfg.broadcast_len = 45 * time::kSecond;
  cfg.rtmp_viewers = 1;
  cfg.hls_viewers = 4;
  cfg.seed = 13;
  ASSERT_TRUE(cfg.poll_wheel);  // the wheel is the default path
  EXPECT_EQ(run_session(cfg), run_session(cfg));
}

// --- 2c. Stale-outstanding regression (failover mid-poll) -------------

// The bug this pins out: a viewer whose poll request is in flight when
// its PoP dies must not carry the outstanding flag into its new
// attachment. The old response evaporates against the bumped generation,
// the fresh cohort slot starts clear, and the viewer resumes polling on
// the new edge -- a wedged flag would silence it forever and show up
// here as a starved post-migration playback.
TEST(StaleOutstanding, MigratedViewersResumePollingOnTheNewEdge) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 4;
  cfg.global_viewers = false;
  cfg.seed = 5;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;  // mid-broadcast: polls are in flight
  spec.duration = 20 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  const std::uint64_t dead_site = cfg.faults.events()[0].target;

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  ASSERT_EQ(session.edge_failovers(), cfg.hls_viewers);
  // The dead PoP dropped the in-flight polls on the floor...
  ASSERT_NE(session.edges().find(dead_site), session.edges().end());
  EXPECT_GT(session.edges().at(dead_site)->polls_dropped(), 0u);
  // ...and every migrated viewer kept polling and playing on the new
  // edge: the live (post-migration) schedule received most of the
  // remaining broadcast.
  for (std::size_t i = 0; i < session.viewer_count(); ++i) {
    const auto& pb = session.viewer_playback(i);
    EXPECT_TRUE(pb.started());
    EXPECT_GE(pb.media_offered(), 20 * time::kSecond);
  }
  for (const auto& v : session.viewer_results()) {
    EXPECT_FALSE(v.orphaned);
    EXPECT_NE(v.attachment.value, dead_site);
    EXPECT_GT(v.units_played, 0u);
  }
}

// --- 3. The solo-retry demotion lane ----------------------------------

TEST(RetryLane, OffByDefaultAndInertOnFaultFreeRuns) {
  core::SessionConfig cfg;
  ASSERT_FALSE(cfg.hls_poll_retry);  // historical behaviour is the default
  cfg.broadcast_len = 40 * time::kSecond;
  cfg.rtmp_viewers = 1;
  cfg.hls_viewers = 4;
  cfg.seed = 11;
  // Enabling the lane on a run where every poll is answered must be
  // bit-inert: the timeout events all find their poll already completed,
  // no retry state is ever created, no extra RNG is drawn.
  auto with_retry = cfg;
  with_retry.hls_poll_retry = true;
  EXPECT_EQ(run_session(cfg), run_session(with_retry));
}

TEST(RetryLane, TimedOutPollDemotesToBackedOffSoloAttempts) {
  // A PoP flap shorter than the failover detect window: polls that hit
  // the dead edge are dropped silently. Without the retry lane each
  // wedged viewer stops polling until failover; with it, viewers keep
  // re-polling on solo backoff timers -- strictly more dropped polls
  // land on the dead edge before the migration rescues everyone.
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto run = [&](bool retry) {
    sim::Simulator sim;
    core::SessionConfig cfg;
    cfg.broadcast_len = 60 * time::kSecond;
    cfg.rtmp_viewers = 0;
    cfg.hls_viewers = 8;
    cfg.global_viewers = false;
    cfg.seed = 5;
    cfg.hls_poll_retry = retry;
    cfg.poll_retry_timeout = 300 * time::kMillisecond;
    cfg.poll_retry.backoff.base = 200 * time::kMillisecond;
    cfg.poll_retry.backoff.cap = 400 * time::kMillisecond;
    fault::RegionalBlackoutSpec spec;
    spec.at = 20 * time::kSecond;
    spec.duration = 10 * time::kSecond;
    spec.center = cfg.broadcaster_location;
    spec.radius_km = 0.0;
    fault::FaultScenario scenario;
    scenario.add(spec);
    cfg.faults = scenario.expand(catalog, cfg.seed);
    const std::uint64_t dead_site = cfg.faults.events()[0].target;
    core::BroadcastSession session(sim, catalog, cfg);
    session.start();
    sim.run();
    session.finalize();
    EXPECT_EQ(session.edge_failovers(), cfg.hls_viewers);
    for (const auto& v : session.viewer_results())
      EXPECT_GT(v.units_played, 0u);
    return session.edges().at(dead_site)->polls_dropped();
  };
  const auto dropped_without = run(false);
  const auto dropped_with = run(true);
  ASSERT_GT(dropped_without, 0u);  // the flap actually ate polls
  EXPECT_GT(dropped_with, dropped_without)
      << "retry lane produced no extra poll attempts during the outage";
}

TEST(RetryLane, GiveUpIsTerminalUntilFailoverRescues) {
  // max_attempts = 1: the first timed-out poll exhausts the streak and
  // the viewer goes inert -- no solo timer, no polling -- until the edge
  // failover machinery migrates it. Everyone still finishes playing.
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 4;
  cfg.global_viewers = false;
  cfg.seed = 5;
  cfg.hls_poll_retry = true;
  cfg.poll_retry_timeout = 300 * time::kMillisecond;
  cfg.poll_retry.max_attempts = 1;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 10 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_EQ(session.edge_failovers(), cfg.hls_viewers);
  for (const auto& v : session.viewer_results()) {
    EXPECT_FALSE(v.orphaned);
    EXPECT_GT(v.units_played, 0u);
  }
}

TEST(RetryLane, RetryRunsAreRunToRunDeterministic) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 6;
  cfg.global_viewers = false;
  cfg.seed = 21;
  cfg.hls_poll_retry = true;
  cfg.poll_retry_timeout = 300 * time::kMillisecond;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 10 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  EXPECT_EQ(run_session(cfg), run_session(cfg));
}

}  // namespace
