#include <gtest/gtest.h>

#include "livesim/stats/sampler.h"
#include "livesim/stats/timeseries.h"
#include "livesim/workload/crowd.h"
#include "livesim/workload/generator.h"

namespace livesim::workload {
namespace {

Dataset small_periscope(double scale = 0.001, std::uint64_t seed = 11) {
  Generator gen(AppProfile::periscope(), scale, seed);
  return gen.generate();
}

Dataset small_meerkat(double scale = 0.05, std::uint64_t seed = 12) {
  Generator gen(AppProfile::meerkat(), scale, seed);
  return gen.generate();
}

TEST(Profile, PeriscopeGrowthTriples) {
  const auto p = AppProfile::periscope();
  // Compare week-averaged volumes to smooth the weekly pattern.
  double first = 0, last = 0;
  for (std::uint32_t d = 0; d < 7; ++d) {
    first += p.daily_volume(d);
    last += p.daily_volume(p.days - 7 + d);
  }
  EXPECT_GT(last / first, 3.0);
  EXPECT_LT(last / first, 6.0);
}

TEST(Profile, AndroidLaunchStep) {
  const auto p = AppProfile::periscope();
  const double before = p.daily_volume(10);
  const double after = p.daily_volume(11);
  EXPECT_GT(after / before, 1.25);  // visible jump on May 26
}

TEST(Profile, WeeklyPatternPeriodic) {
  const auto p = AppProfile::periscope();
  // Divide out the exponential growth; the residual must swing weekly and
  // repeat with period 7.
  auto detrended = [&](std::uint32_t d) {
    const double frac = static_cast<double>(d) / (p.days - 1);
    return p.daily_volume(d) / std::pow(p.growth_total, frac);
  };
  double lo = 1e18, hi = 0;
  for (std::uint32_t d = 30; d < 37; ++d) {
    lo = std::min(lo, detrended(d));
    hi = std::max(hi, detrended(d));
  }
  EXPECT_GT(hi / lo, 1.15);  // visible weekend peak vs weekday trough
  for (std::uint32_t d = 30; d < 37; ++d)
    EXPECT_NEAR(detrended(d) / detrended(d + 7), 1.0, 1e-9);
}

TEST(Profile, MeerkatDeclines) {
  const auto p = AppProfile::meerkat();
  EXPECT_LT(p.daily_volume(p.days - 1), 0.6 * p.daily_volume(0));
}

TEST(Profile, OutageWindowCapturesLess) {
  const auto p = AppProfile::periscope();
  EXPECT_EQ(p.capture_fraction(50), 1.0);
  EXPECT_LT(p.capture_fraction(85), 1.0);
  EXPECT_EQ(p.capture_fraction(88), 1.0);
}

TEST(Generator, PeriscopeScaleMatchesPaperTotals) {
  const auto ds = small_periscope(0.002, 3);
  const double inv = 1.0 / ds.scale;
  // ~19.6M broadcasts at paper scale (within 25%).
  EXPECT_NEAR(static_cast<double>(ds.captured_broadcasts()) * inv, 19.6e6,
              19.6e6 * 0.25);
  // ~705M total views (within 40% at this small scale).
  EXPECT_NEAR(static_cast<double>(ds.total_views()) * inv, 705e6, 705e6 * 0.4);
  // broadcasts : broadcasters ~ 10.6 : 1.
  const double per_creator =
      static_cast<double>(ds.captured_broadcasts()) /
      static_cast<double>(ds.unique_broadcasters());
  EXPECT_GT(per_creator, 5.0);
  EXPECT_LT(per_creator, 20.0);
}

TEST(Generator, DurationsMatchFigure3) {
  const auto ds = small_periscope();
  stats::Sampler dur;
  for (const auto& b : ds.broadcasts) dur.add(time::to_seconds(b.length));
  // 85% of broadcasts are under 10 minutes.
  EXPECT_NEAR(dur.fraction_leq(600.0), 0.85, 0.05);
  EXPECT_GE(dur.min(), 10.0);
  EXPECT_LE(dur.max(), 24.0 * 3600.0);
}

TEST(Generator, MeerkatMostBroadcastsHaveNoViewers) {
  const auto ds = small_meerkat();
  std::uint64_t zero = 0;
  for (const auto& b : ds.broadcasts)
    if (b.total_viewers() == 0) ++zero;
  EXPECT_NEAR(static_cast<double>(zero) /
                  static_cast<double>(ds.broadcasts.size()),
              0.60, 0.06);  // Figure 4: "60% have no viewers at all"
}

TEST(Generator, PeriscopeNearlyAllBroadcastsViewed) {
  const auto ds = small_periscope();
  std::uint64_t zero = 0;
  for (const auto& b : ds.broadcasts)
    if (b.total_viewers() == 0) ++zero;
  EXPECT_LT(static_cast<double>(zero) /
                static_cast<double>(ds.broadcasts.size()),
            0.10);
}

TEST(Generator, InteractionSkewMatchesFigure5) {
  const auto ds = small_periscope(0.002, 5);
  stats::Sampler comments, hearts;
  for (const auto& b : ds.broadcasts) {
    comments.add(b.comments);
    hearts.add(static_cast<double>(b.hearts));
  }
  // ~10% of broadcasts draw >100 comments; ~10% draw >1000 hearts.
  EXPECT_NEAR(comments.fraction_geq(100.0), 0.10, 0.05);
  EXPECT_NEAR(hearts.fraction_geq(1000.0), 0.10, 0.05);
  // The most-loved broadcast collects hearts on the 10^6 order (1.35M).
  EXPECT_GT(hearts.max(), 2e5);
}

TEST(Generator, CommentsCappedByCommenterPolicy) {
  const auto ds = small_periscope(0.002, 6);
  // Comments stay bounded even for huge audiences: only ~100 can comment.
  stats::Sampler big_audience_comments;
  for (const auto& b : ds.broadcasts)
    if (b.total_viewers() > 1000)
      big_audience_comments.add(b.comments);
  ASSERT_GT(big_audience_comments.size(), 10u);
  // With a 100-commenter cap and lognormal(1,1) comments each, p95 stays
  // within a few hundred; without the cap it would scale with viewers.
  EXPECT_LT(big_audience_comments.quantile(0.95), 2000.0);
}

TEST(Generator, HlsViewerRule) {
  BroadcastRecord b;
  b.mobile_viewers = 30;
  b.web_viewers = 20;
  EXPECT_EQ(b.total_viewers(), 50u);
  EXPECT_EQ(b.hls_viewers(100), 0u);
  b.mobile_viewers = 150;
  EXPECT_EQ(b.hls_viewers(100), 70u);
  EXPECT_EQ(b.hls_viewers(50), 120u);
}

TEST(Generator, DailySeriesShowsOutageDip) {
  const auto ds = small_periscope(0.004, 7);
  const auto& p = ds.profile;
  stats::DailySeries captured(p.days), all(p.days);
  for (const auto& b : ds.broadcasts) {
    all.add_day(b.day);
    if (b.captured) captured.add_day(b.day);
  }
  const std::uint32_t outage_day =
      static_cast<std::uint32_t>(p.outage_start_day) + 1;
  const double ratio =
      static_cast<double>(captured.at(outage_day)) /
      static_cast<double>(all.at(outage_day));
  EXPECT_NEAR(ratio, p.outage_capture_fraction, 0.12);
  // Outside the outage everything is captured.
  EXPECT_EQ(captured.at(40), all.at(40));
}

TEST(Generator, ViewerActivitySkew) {
  const auto ds = small_periscope(0.004, 8);
  stats::Sampler views;
  for (const auto& u : ds.users)
    if (u.broadcasts_viewed > 0) views.add(u.broadcasts_viewed);
  ASSERT_GT(views.size(), 100u);
  // Figure 6: the most active ~15% of viewers watch ~10x the median.
  const double ratio = views.quantile(0.85) / std::max(1.0, views.median());
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(Generator, FollowersCorrelateWithViewers) {
  const auto ds = small_periscope(0.002, 9);
  stats::Correlation corr;
  for (const auto& b : ds.broadcasts) {
    if (b.followers > 0 && b.total_viewers() > 0)
      corr.add(std::log10(static_cast<double>(b.followers)),
               std::log10(static_cast<double>(b.total_viewers())));
  }
  EXPECT_GT(corr.pearson(), 0.15);  // Figure 7's visible upward trend
}

TEST(Generator, DeterministicForSeed) {
  const auto a = small_periscope(0.0005, 42);
  const auto b = small_periscope(0.0005, 42);
  ASSERT_EQ(a.broadcasts.size(), b.broadcasts.size());
  EXPECT_EQ(a.total_views(), b.total_views());
  EXPECT_EQ(a.broadcasts[10].hearts, b.broadcasts[10].hearts);
}

TEST(Generator, ScaleScalesVolume) {
  const auto small = small_periscope(0.0005, 1);
  const auto big = small_periscope(0.001, 1);
  const double ratio = static_cast<double>(big.broadcasts.size()) /
                       static_cast<double>(small.broadcasts.size());
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(Generator, RegisteredUserEstimateTracksPopulation) {
  const auto ds = small_periscope(0.002, 21);
  const auto estimate = estimate_registered_users(ds);
  // Sequential-id estimate must land close to the scaled population
  // (12M * 0.002 = 24000), and never exceed it.
  EXPECT_LE(estimate, 24000u);
  EXPECT_GT(estimate, 24000u * 0.8);
}

TEST(Generator, HlsViewerPrevalenceMatchesPaper) {
  // §4.1: "Among the complete set of periscope broadcasts (19.6M) ...
  // 1.13M broadcasts (5.77%) had at least one HLS viewer, and 435K had at
  // least 100 HLS viewers" (2.2%).
  const auto ds = small_periscope(0.004, 30);
  std::uint64_t any_hls = 0, hundred_hls = 0, total = 0;
  for (const auto& b : ds.broadcasts) {
    if (!b.captured) continue;
    ++total;
    if (b.hls_viewers(100) >= 1) ++any_hls;
    if (b.hls_viewers(100) >= 100) ++hundred_hls;
  }
  const double any = static_cast<double>(any_hls) / total;
  const double hundred = static_cast<double>(hundred_hls) / total;
  EXPECT_GT(any, 0.03);
  EXPECT_LT(any, 0.10);     // paper: 5.77%
  EXPECT_GT(hundred, 0.005);
  EXPECT_LT(hundred, 0.05); // paper: 2.2%
}

// --- Crowd presets (the flash-crowd poll-wheel workloads) -------------

TEST(Crowd, RecordsStayInsideTheHorizon) {
  for (const auto& preset : {CrowdPreset::twitch_flash_crowd(),
                             CrowdPreset::twitch_steady_giants(),
                             CrowdPreset::periscope_tail()}) {
    const auto records = generate_crowd(preset, 3);
    ASSERT_EQ(records.size(), preset.viewers);
    for (const auto& r : records) {
      EXPECT_LT(r.channel, preset.channels);
      EXPECT_LT(r.join, preset.horizon);
      EXPECT_GE(r.stay, 1);
      EXPECT_LE(r.join + r.stay, preset.horizon);
    }
  }
}

TEST(Crowd, FlashCrowdShapeHasConcentrationAndAJoinStorm) {
  const auto preset = CrowdPreset::twitch_flash_crowd();
  const auto records = generate_crowd(preset, 7, 4);
  const auto shape = crowd_shape(records, preset.horizon);
  // Zipf(1.8) over 50 channels: the top channel holds roughly half the
  // crowd (measured ~0.548 across seeds).
  EXPECT_GT(shape.top_channel_share, 0.48);
  EXPECT_LT(shape.top_channel_share, 0.62);
  // The 8x join storm shows up as a sharp concurrency peak at the end of
  // the ramp window [15 min, 17 min) -- well above the steady mean.
  EXPECT_GT(shape.peak_to_mean, 2.3);
  EXPECT_GE(shape.peak_at, preset.horizon / 2);
  EXPECT_LE(shape.peak_at,
            preset.horizon / 2 + 2 * time::from_seconds(preset.spike_ramp_s));
  // Arrival mixture: amplitude 8 over a 120 s window of the 30 min
  // horizon puts ~8/22 of all joins inside the window.
  std::uint64_t in_spike = 0;
  const auto spike_start = static_cast<TimeUs>(preset.horizon / 2);
  const auto spike_len = time::from_seconds(preset.spike_ramp_s);
  for (const auto& r : records)
    if (r.join >= spike_start && r.join < spike_start + spike_len) ++in_spike;
  const double frac =
      static_cast<double>(in_spike) / static_cast<double>(records.size());
  EXPECT_NEAR(frac, 8.0 / 22.0, 0.04);
}

TEST(Crowd, SteadyGiantsShapeIsFlatAndConcentrated) {
  const auto preset = CrowdPreset::twitch_steady_giants();
  const auto records = generate_crowd(preset, 7, 4);
  const auto shape = crowd_shape(records, preset.horizon);
  // Zipf(2.0) over 20 channels: even heavier concentration (~0.63).
  EXPECT_GT(shape.top_channel_share, 0.55);
  EXPECT_LT(shape.top_channel_share, 0.70);
  // No storm: concurrency just accumulates, peak stays near the mean.
  EXPECT_LT(shape.peak_to_mean, 1.9);
}

TEST(Crowd, PeriscopeTailIsDiffuseAndChurny) {
  const auto tail = CrowdPreset::periscope_tail();
  const auto tail_shape =
      crowd_shape(generate_crowd(tail, 7, 4), tail.horizon);
  // Thousands of small channels: no channel dominates, no storm.
  EXPECT_LT(tail_shape.top_channel_share, 0.25);
  EXPECT_LT(tail_shape.peak_to_mean, 1.5);

  // Cross-preset ordering: short 90 s sessions churn the attached cohort
  // far faster than the 20-minute steady-giant sessions, with the
  // flash-crowd preset in between -- the regime the wheel's attach/
  // detach path is sized for.
  const auto steady = CrowdPreset::twitch_steady_giants();
  const auto steady_shape =
      crowd_shape(generate_crowd(steady, 7, 4), steady.horizon);
  const auto flash = CrowdPreset::twitch_flash_crowd();
  const auto flash_shape =
      crowd_shape(generate_crowd(flash, 7, 4), flash.horizon);
  EXPECT_GT(tail_shape.churn_per_min, flash_shape.churn_per_min);
  EXPECT_GT(flash_shape.churn_per_min, steady_shape.churn_per_min);
}

TEST(Crowd, ShapeIsStableAcrossSeeds) {
  // The tolerance bands above must hold for any seed, not one lucky
  // draw: spot-check the load-bearing flash-crowd numbers across seeds.
  const auto preset = CrowdPreset::twitch_flash_crowd();
  for (std::uint64_t seed : {7, 21, 99}) {
    const auto shape = crowd_shape(generate_crowd(preset, seed), preset.horizon);
    EXPECT_GT(shape.top_channel_share, 0.48) << seed;
    EXPECT_LT(shape.top_channel_share, 0.62) << seed;
    EXPECT_GT(shape.peak_to_mean, 2.3) << seed;
  }
}

TEST(Crowd, FingerprintPinsTheExactRecordStream) {
  const auto preset = CrowdPreset::twitch_flash_crowd();
  const auto a = generate_crowd(preset, 42);
  const auto b = generate_crowd(preset, 42);
  EXPECT_EQ(crowd_fingerprint(a), crowd_fingerprint(b));
  // The fingerprint covers every field of every record in order: any
  // perturbation changes it.
  auto mutated = a;
  mutated[100].stay += 1;
  EXPECT_NE(crowd_fingerprint(a), crowd_fingerprint(mutated));
}

}  // namespace
}  // namespace livesim::workload
