#include <gtest/gtest.h>

#include "livesim/core/service.h"

namespace livesim::core {
namespace {

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture()
      : catalog_(geo::DatacenterCatalog::paper_footprint()),
        service_(sim_, catalog_, make_config()) {}

  static LivestreamService::Config make_config() {
    LivestreamService::Config cfg;
    cfg.rtmp_slot_cap = 3;  // small caps to exercise overflow in tests
    cfg.commenter_cap = 2;
    cfg.seed = 11;
    return cfg;
  }

  sim::Simulator sim_;
  geo::DatacenterCatalog catalog_;
  LivestreamService service_;
};

TEST_F(ServiceFixture, BroadcastAppearsOnGlobalListWhileLive) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 30 * time::kSecond);
  EXPECT_EQ(service_.global_list().active_count(), 1u);
  EXPECT_TRUE(service_.info(id)->live);
  sim_.run();
  EXPECT_EQ(service_.global_list().active_count(), 0u);
  EXPECT_FALSE(service_.info(id)->live);
}

TEST_F(ServiceFixture, SlotPolicyFirstComersGetRtmp) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 60 * time::kSecond);
  std::vector<LivestreamService::ViewerHandle> handles;
  for (int i = 0; i < 6; ++i) {
    auto h = service_.join(id, {40.71, -74.01});
    ASSERT_TRUE(h.has_value());
    handles.push_back(*h);
  }
  // First 3 on RTMP (cap), of which the first 2 may comment.
  EXPECT_TRUE(handles[0].rtmp);
  EXPECT_TRUE(handles[1].rtmp);
  EXPECT_TRUE(handles[2].rtmp);
  EXPECT_FALSE(handles[3].rtmp);
  EXPECT_FALSE(handles[5].rtmp);
  EXPECT_TRUE(handles[0].can_comment);
  EXPECT_TRUE(handles[1].can_comment);
  EXPECT_FALSE(handles[2].can_comment);
  EXPECT_FALSE(handles[4].can_comment);

  const auto info = service_.info(id);
  EXPECT_EQ(info->rtmp_viewers, 3u);
  EXPECT_EQ(info->hls_viewers, 3u);
  sim_.run();
}

TEST_F(ServiceFixture, JoinDeadBroadcastFails) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 10 * time::kSecond);
  sim_.run();
  EXPECT_FALSE(service_.join(id, {40.71, -74.01}).has_value());
  EXPECT_FALSE(service_.join(BroadcastId{999}, {40.71, -74.01}).has_value());
}

TEST_F(ServiceFixture, CommentsRejectedBeyondCap) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 60 * time::kSecond);
  auto privileged = *service_.join(id, {37.0, -122.0});
  (void)*service_.join(id, {37.0, -122.0});  // second commenter slot
  auto third = *service_.join(id, {37.0, -122.0});

  // Let playback start before commenting.
  sim_.run_until(20 * time::kSecond);
  EXPECT_TRUE(service_.send_comment(privileged, "hello"));
  EXPECT_FALSE(service_.send_comment(third, "let me in"));
  EXPECT_EQ(service_.comments_rejected(), 1u);
  sim_.run();
  EXPECT_EQ(service_.info(id)->comments, 1u);
}

TEST_F(ServiceFixture, HeartsCountAndCarryFeedbackLag) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 90 * time::kSecond);
  auto rtmp_viewer = *service_.join(id, {37.0, -122.0});
  ASSERT_TRUE(rtmp_viewer.rtmp);
  for (int i = 0; i < 3; ++i) (void)service_.join(id, {37.0, -122.0});
  auto hls_viewer = *service_.join(id, {37.0, -122.0});
  ASSERT_FALSE(hls_viewer.rtmp);

  // Hearts at t=30s and t=60s from both cohorts.
  for (TimeUs t : {30 * time::kSecond, 60 * time::kSecond}) {
    sim_.schedule_at(t, [&] {
      service_.send_heart(rtmp_viewer);
      service_.send_heart(hls_viewer);
    });
  }
  sim_.run();

  EXPECT_EQ(service_.info(id)->hearts, 4u);
  ASSERT_EQ(service_.rtmp_feedback_lag_s().count(), 2u);
  ASSERT_EQ(service_.hls_feedback_lag_s().count(), 2u);
  // RTMP feedback is near-real-time; HLS reactions refer to a moment
  // ~10 s in the past -- the paper's "delayed applause" problem.
  EXPECT_LT(service_.rtmp_feedback_lag_s().mean(), 3.0);
  EXPECT_GT(service_.hls_feedback_lag_s().mean(), 6.0);
  EXPECT_GT(service_.hls_feedback_lag_s().mean(),
            3.0 * service_.rtmp_feedback_lag_s().mean());
}

TEST_F(ServiceFixture, HeartBeforePlaybackStartsIsDropped) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 60 * time::kSecond);
  auto v = *service_.join(id, {37.0, -122.0});
  service_.send_heart(v);  // nothing on screen yet
  sim_.run();
  EXPECT_EQ(service_.info(id)->hearts, 0u);
}

TEST_F(ServiceFixture, ConcurrentBroadcastsAreIndependent) {
  const auto a =
      service_.start_broadcast({37.77, -122.42}, 40 * time::kSecond);
  const auto b =
      service_.start_broadcast({51.51, -0.13}, 80 * time::kSecond);
  EXPECT_EQ(service_.global_list().active_count(), 2u);

  auto va = *service_.join(a, {37.0, -122.0});
  auto vb = *service_.join(b, {52.0, 0.0});
  sim_.schedule_at(20 * time::kSecond, [&] {
    service_.send_heart(va);
    service_.send_heart(vb);
  });
  sim_.run();
  EXPECT_EQ(service_.info(a)->hearts, 1u);
  EXPECT_EQ(service_.info(b)->hearts, 1u);
  // Different ingest sites: San Jose vs Dublin.
  EXPECT_NE(service_.session(a)->ingest_site(),
            service_.session(b)->ingest_site());
}

TEST_F(ServiceFixture, MidBroadcastJoinersStillPlay) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 60 * time::kSecond);
  LivestreamService::ViewerHandle late{};
  sim_.schedule_at(30 * time::kSecond, [&] {
    late = *service_.join(id, {40.71, -74.01});
  });
  sim_.run();
  ASSERT_TRUE(late.valid());
  const auto& playback = service_.session(id)->viewer_playback(
      late.viewer_index);
  EXPECT_TRUE(playback.started());
  EXPECT_GT(playback.units_played(), 100u);  // ~30 s of frames
}

TEST_F(ServiceFixture, LeaveStopsDelivery) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 60 * time::kSecond);
  auto v = *service_.join(id, {37.0, -122.0});
  // Let ~20 s play, then leave; the played-unit count must freeze.
  sim_.run_until(20 * time::kSecond);
  service_.leave(v);
  const auto played_at_leave =
      service_.session(id)->viewer_playback(v.viewer_index).units_played();
  sim_.run();
  const auto played_final =
      service_.session(id)->viewer_playback(v.viewer_index).units_played();
  // A few in-flight frames may still land, but not 40 more seconds' worth.
  EXPECT_LT(played_final, played_at_leave + 50);
  EXPECT_GT(played_at_leave, 200u);
}

TEST_F(ServiceFixture, LeaveIsIdempotentAndSurvivesBroadcastEnd) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 10 * time::kSecond);
  auto v = *service_.join(id, {37.0, -122.0});
  service_.leave(v);
  service_.leave(v);
  sim_.run();
  service_.leave(v);  // after the broadcast ended: no-op
}

TEST_F(ServiceFixture, PrivateBroadcastEnforcesInviteList) {
  const auto id = service_.start_private_broadcast(
      {37.77, -122.42}, 60 * time::kSecond, {UserId{10}, UserId{11}});
  // Never on the public global list.
  EXPECT_EQ(service_.global_list().active_count(), 0u);
  EXPECT_TRUE(service_.info(id)->is_private);
  EXPECT_TRUE(service_.info(id)->encrypted_transport);  // RTMPS (§7.2)

  // Invitees get in; strangers and anonymous joins are rejected.
  EXPECT_TRUE(service_.join_as(id, UserId{10}, {37.0, -122.0}).has_value());
  EXPECT_FALSE(service_.join_as(id, UserId{99}, {37.0, -122.0}).has_value());
  EXPECT_FALSE(service_.join(id, {37.0, -122.0}).has_value());
  sim_.run();
  EXPECT_EQ(service_.info(id)->rtmp_viewers, 1u);
}

TEST_F(ServiceFixture, PublicBroadcastIgnoresIdentity) {
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 30 * time::kSecond);
  EXPECT_FALSE(service_.info(id)->is_private);
  EXPECT_FALSE(service_.info(id)->encrypted_transport);
  EXPECT_TRUE(service_.join_as(id, UserId{12345}, {37.0, -122.0}).has_value());
  EXPECT_TRUE(service_.join(id, {37.0, -122.0}).has_value());
  sim_.run();
}

}  // namespace
}  // namespace livesim::core
