// Integration smoke test: one broadcast end to end, checking that the
// delay components land in the paper's ballpark (Figure 11 shape).
#include <gtest/gtest.h>

#include "livesim/core/broadcast_session.h"

namespace livesim {
namespace {

TEST(BroadcastSessionSmoke, Figure11Shape) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  core::SessionConfig cfg;
  cfg.broadcast_len = 120 * time::kSecond;
  cfg.rtmp_viewers = 5;
  cfg.hls_viewers = 10;
  cfg.crawler_pollers = true;  // the paper's own measurement methodology
  cfg.seed = 42;

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  const auto& rtmp = session.rtmp_breakdown();
  const auto& hls = session.hls_breakdown();

  // Frames got through.
  EXPECT_GT(session.ingest().frames_ingested(), 2500u);
  EXPECT_GT(rtmp.upload_s.count(), 2500u);

  // RTMP end-to-end ~1.4 s in the paper; accept a generous band.
  const double rtmp_total = rtmp.total_s();
  EXPECT_GT(rtmp_total, 0.3) << "RTMP e2e suspiciously low";
  EXPECT_LT(rtmp_total, 4.0) << "RTMP e2e suspiciously high";

  // HLS end-to-end ~11.7 s in the paper.
  const double hls_total = hls.total_s();
  EXPECT_GT(hls_total, 6.0) << "HLS e2e suspiciously low";
  EXPECT_LT(hls_total, 20.0) << "HLS e2e suspiciously high";

  // Ordering of contributors: buffering > chunking > polling > w2f.
  EXPECT_GT(hls.buffering_s.mean(), hls.chunking_s.mean());
  EXPECT_GT(hls.chunking_s.mean(), hls.w2f_s.mean());
  EXPECT_NEAR(hls.chunking_s.mean(), 3.0, 1.0);  // ~3 s chunks
  EXPECT_GT(hls.polling_s.mean(), 0.5);
  EXPECT_LT(hls.polling_s.mean(), 2.5);

  // HLS must be far slower than RTMP (the paper's headline contrast).
  EXPECT_GT(hls_total, 3.0 * rtmp_total);

  // Viewers actually played content.
  for (const auto& v : session.viewer_results()) {
    EXPECT_GT(v.units_played, 0u) << (v.hls ? "HLS" : "RTMP");
    EXPECT_LT(v.stall_ratio, 0.5);
  }
}

TEST(BroadcastSessionSmoke, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    const auto catalog = geo::DatacenterCatalog::paper_footprint();
    core::SessionConfig cfg;
    cfg.broadcast_len = 30 * time::kSecond;
    cfg.seed = 7;
    core::BroadcastSession s(sim, catalog, cfg);
    s.start();
    sim.run();
    s.finalize();
    return std::pair{s.rtmp_breakdown().total_s(), s.hls_breakdown().total_s()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

class SessionChunkSweep : public ::testing::TestWithParam<int> {};

// The chunking component of the full end-to-end path must track the
// configured chunk duration (the §5.2 dial, wired through every layer).
TEST_P(SessionChunkSweep, ChunkingDelayTracksConfig) {
  const int chunk_s = GetParam();
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 90 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 4;
  cfg.crawler_pollers = true;
  cfg.chunker.target_duration = chunk_s * time::kSecond;
  cfg.chunker.max_duration = 2 * chunk_s * time::kSecond;
  cfg.hls_prebuffer = 3 * chunk_s * time::kSecond;
  cfg.seed = 55 + static_cast<std::uint64_t>(chunk_s);
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_NEAR(session.hls_breakdown().chunking_s.mean(),
              static_cast<double>(chunk_s), 1.0);
  // Larger chunks -> larger end-to-end delay, monotone through the stack.
  EXPECT_GT(session.hls_breakdown().total_s(), 2.5 * chunk_s);
}

INSTANTIATE_TEST_SUITE_P(Chunks, SessionChunkSweep,
                         ::testing::Values(1, 2, 3, 5));

TEST(BroadcastSessionSmoke, ByteAccountingConsistent) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 3;
  cfg.hls_viewers = 3;
  cfg.seed = 77;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();

  const auto& ingest = session.ingest();
  // 3 RTMP subscribers: egress = 3x ingress (frame fan-out).
  EXPECT_EQ(ingest.egress_bytes(), 3 * ingest.ingress_bytes());
  EXPECT_GT(ingest.ingress_bytes(), 1000000u);  // ~60 s of 400 kbps video

  std::uint64_t edge_egress = 0;
  for (const auto& [site, edge] : session.edges())
    edge_egress += edge->egress_bytes();
  // HLS viewers downloaded roughly the stream once each (+ playlists).
  EXPECT_GT(edge_egress, 2 * ingest.ingress_bytes());
  EXPECT_LT(edge_egress, 8 * ingest.ingress_bytes());
}

}  // namespace
}  // namespace livesim
