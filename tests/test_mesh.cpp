#include <gtest/gtest.h>

#include "livesim/overlay/mesh.h"

namespace livesim::overlay {
namespace {

media::Chunk chunk(std::uint64_t seq) {
  media::Chunk c;
  c.seq = seq;
  c.duration = 3 * time::kSecond;
  c.size_bytes = 150000;
  return c;
}

P2PMesh::Params default_params() { return {}; }

TEST(Mesh, AllPeersEventuallyReceive) {
  sim::Simulator sim;
  P2PMesh mesh(sim, default_params(), Rng(1));
  int deliveries = 0;
  const int kPeers = 200;
  for (int i = 0; i < kPeers; ++i)
    mesh.join([&](const media::Chunk&, TimeUs, std::uint32_t) {
      ++deliveries;
    });
  mesh.push_chunk(chunk(0));
  sim.run();
  EXPECT_EQ(deliveries, kPeers);
  EXPECT_DOUBLE_EQ(mesh.last_chunk_coverage(), 1.0);
}

TEST(Mesh, ServerEgressIndependentOfAudience) {
  for (int peers : {50, 500, 2000}) {
    sim::Simulator sim;
    P2PMesh mesh(sim, default_params(), Rng(2));
    for (int i = 0; i < peers; ++i)
      mesh.join([](const media::Chunk&, TimeUs, std::uint32_t) {});
    for (std::uint64_t s = 0; s < 5; ++s) mesh.push_chunk(chunk(s));
    sim.run();
    EXPECT_EQ(mesh.server_egress_chunks(), 5u * 3u) << peers << " peers";
  }
}

TEST(Mesh, DeliveryHopsGrowLogarithmically) {
  auto mean_hops = [](int peers) {
    sim::Simulator sim;
    P2PMesh mesh(sim, default_params(), Rng(3));
    for (int i = 0; i < peers; ++i)
      mesh.join([](const media::Chunk&, TimeUs, std::uint32_t) {});
    mesh.push_chunk(chunk(0));
    sim.run();
    return mesh.delivery_hops().mean();
  };
  const double h100 = mean_hops(100);
  const double h2000 = mean_hops(2000);
  EXPECT_GT(h2000, h100);          // grows with audience...
  EXPECT_LT(h2000, 3.0 * h100);    // ...but sub-linearly (epidemic spread)
  EXPECT_LT(h2000, 15.0);
}

TEST(Mesh, DelaySlowerThanCdnPush) {
  sim::Simulator sim;
  P2PMesh mesh(sim, default_params(), Rng(4));
  for (int i = 0; i < 1000; ++i)
    mesh.join([](const media::Chunk&, TimeUs, std::uint32_t) {});
  mesh.push_chunk(chunk(0));
  sim.run();
  // Multiple residential hops: mean delivery takes over half a second
  // (vs a single CDN hop), the P2P latency tax.
  EXPECT_GT(mesh.delivery_delay_s().mean(), 0.5);
  EXPECT_LT(mesh.delivery_delay_s().mean(), 10.0);
}

TEST(Mesh, SurvivesChurn) {
  sim::Simulator sim;
  P2PMesh mesh(sim, default_params(), Rng(5));
  std::vector<std::uint64_t> ids;
  int deliveries = 0;
  for (int i = 0; i < 300; ++i)
    ids.push_back(mesh.join(
        [&](const media::Chunk&, TimeUs, std::uint32_t) { ++deliveries; }));
  // A third of the mesh leaves.
  Rng rng(6);
  for (int i = 0; i < 100; ++i)
    mesh.leave(ids[static_cast<std::size_t>(rng.uniform_int(0, 299))]);
  const auto live = mesh.peers();
  mesh.push_chunk(chunk(1));
  sim.run();
  // Random 4-regular-ish graphs stay overwhelmingly connected at 1/3
  // churn; nearly everyone alive still gets the chunk.
  EXPECT_GT(mesh.last_chunk_coverage(), 0.9);
  EXPECT_LE(mesh.last_chunk_coverage(), 1.0);
  EXPECT_LT(mesh.peers(), 300u);
  EXPECT_EQ(mesh.peers(), live);
}

TEST(Mesh, DuplicateOffersSuppressed) {
  sim::Simulator sim;
  P2PMesh mesh(sim, default_params(), Rng(7));
  int deliveries = 0;
  for (int i = 0; i < 100; ++i)
    mesh.join([&](const media::Chunk&, TimeUs, std::uint32_t) {
      ++deliveries;
    });
  mesh.push_chunk(chunk(0));
  mesh.push_chunk(chunk(0));  // same seq again: peers already have it
  sim.run();
  EXPECT_EQ(deliveries, 100);
}

TEST(Mesh, LeaveIsIdempotent) {
  sim::Simulator sim;
  P2PMesh mesh(sim, default_params(), Rng(8));
  const auto id = mesh.join([](const media::Chunk&, TimeUs, std::uint32_t) {});
  mesh.leave(id);
  mesh.leave(id);
  mesh.leave(9999);
  EXPECT_EQ(mesh.peers(), 0u);
}

}  // namespace
}  // namespace livesim::overlay
