#include <gtest/gtest.h>

#include <cmath>

#include "livesim/stats/accumulator.h"
#include "livesim/stats/histogram.h"
#include "livesim/stats/report.h"
#include "livesim/stats/sampler.h"
#include "livesim/stats/timeseries.h"

namespace livesim::stats {
namespace {

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSinglePass) {
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(i * 0.1) * 10 + i * 0.01;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Correlation, PerfectPositive) {
  Correlation c;
  for (int i = 0; i < 100; ++i) c.add(i, 2.0 * i + 5.0);
  EXPECT_NEAR(c.pearson(), 1.0, 1e-9);
}

TEST(Correlation, PerfectNegative) {
  Correlation c;
  for (int i = 0; i < 100; ++i) c.add(i, -3.0 * i);
  EXPECT_NEAR(c.pearson(), -1.0, 1e-9);
}

TEST(Correlation, IndependentNearZero) {
  Correlation c;
  // Deterministic decorrelated pattern.
  for (int i = 0; i < 1000; ++i)
    c.add(std::sin(i * 1.7), std::cos(i * 2.3));
  EXPECT_NEAR(c.pearson(), 0.0, 0.1);
}

TEST(Correlation, DegenerateCases) {
  Correlation c;
  EXPECT_EQ(c.pearson(), 0.0);
  c.add(1.0, 1.0);
  EXPECT_EQ(c.pearson(), 0.0);  // single point
  Correlation flat;
  flat.add(1.0, 5.0);
  flat.add(2.0, 5.0);
  EXPECT_EQ(flat.pearson(), 0.0);  // zero y-variance
}

TEST(Sampler, QuantilesOfKnownData) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
}

TEST(Sampler, QuantileOfEmptyThrows) {
  Sampler s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(Sampler, CdfMonotoneAndBounded) {
  Sampler s;
  for (double x : {5.0, 1.0, 3.0, 3.0, 9.0}) s.add(x);
  double prev = -1;
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    const double f = s.cdf_at(x);
    ASSERT_GE(f, prev);
    ASSERT_GE(f, 0.0);
    ASSERT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(s.cdf_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(9.0), 1.0);   // <= semantics
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 0.6);   // 1,3,3 of 5
}

TEST(Sampler, FractionGeq) {
  Sampler s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.fraction_geq(3.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_geq(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_geq(5.0), 0.0);
}

TEST(Sampler, SummaryTracksAccumulator) {
  Sampler s;
  s.add(2.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Sampler, AddAfterSortInvalidatesCache) {
  Sampler s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

TEST(SamplerMerge, WithEmptyIsIdentityBothWays) {
  Sampler s, empty;
  s.add(1.0);
  s.add(4.0);
  s.merge(empty);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  empty.merge(s);
  EXPECT_EQ(empty.size(), 2u);
  EXPECT_EQ(empty.samples(), s.samples());
  EXPECT_DOUBLE_EQ(empty.mean(), 2.5);
  Sampler both;  // empty.merge(empty) stays empty
  both.merge(Sampler{});
  EXPECT_TRUE(both.empty());
}

TEST(SamplerMerge, EqualsSinglePassAccumulationExactly) {
  // The determinism contract: merging contiguous shards in index order is
  // bit-identical to one serial pass, including the streaming moments.
  Sampler whole, a, b, c;
  for (int i = 0; i < 999; ++i) {
    const double x = std::sin(i * 0.37) * 12.0 + i * 0.003;
    whole.add(x);
    (i < 300 ? a : i < 700 ? b : c).add(x);
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.samples(), whole.samples());
  EXPECT_EQ(a.mean(), whole.mean());      // exact, not NEAR
  EXPECT_EQ(a.stddev(), whole.stddev());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_EQ(a.median(), whole.median());
}

TEST(SamplerMerge, OrderIndependentUpToFpTolerance) {
  Sampler a1, b1, a2, b2;
  for (int i = 0; i < 500; ++i) {
    const double x = std::cos(i * 0.11) * 3.0;
    const double y = std::sin(i * 0.23) * 7.0;
    a1.add(x);
    a2.add(x);
    b1.add(y);
    b2.add(y);
  }
  a1.merge(b1);  // A then B
  b2.merge(a2);  // B then A
  EXPECT_EQ(a1.size(), b2.size());
  EXPECT_NEAR(a1.mean(), b2.mean(), 1e-12);
  EXPECT_NEAR(a1.stddev(), b2.stddev(), 1e-12);
  EXPECT_EQ(a1.min(), b2.min());
  EXPECT_EQ(a1.max(), b2.max());
  // Quantiles see the same multiset regardless of merge order.
  EXPECT_NEAR(a1.quantile(0.9), b2.quantile(0.9), 1e-12);
}

TEST(SamplerMerge, CdfCoversMergedSamples) {
  Sampler a, b;
  for (double x : {1.0, 2.0}) a.add(x);
  for (double x : {3.0, 4.0}) b.add(x);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(a.cdf_at(4.0), 1.0);
}

TEST(HistogramMerge, AddsCountsBinByBin) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.add(0.5);
  a.add(5.5);
  b.add(5.7);
  b.add(20.0);  // clamps into last bin
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(0), 1u);
  EXPECT_EQ(a.count(5), 2u);
  EXPECT_EQ(a.count(9), 1u);
}

TEST(HistogramMerge, WithEmptyIsIdentity) {
  Histogram a(0.0, 1.0, 4), empty(0.0, 1.0, 4);
  a.add(0.1);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 1u);
  EXPECT_EQ(empty.count(0), 1u);
}

TEST(HistogramMerge, EqualsSinglePassAndIsOrderIndependent) {
  Histogram whole(-5.0, 5.0, 20), left(-5.0, 5.0, 20), right(-5.0, 5.0, 20);
  Histogram rl(-5.0, 5.0, 20);
  for (int i = 0; i < 400; ++i) {
    const double x = std::sin(i * 0.7) * 6.0;  // exercises clamping too
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  Histogram lr = left;
  lr.merge(right);
  rl.merge(right);
  rl.merge(left);
  ASSERT_EQ(lr.total(), whole.total());
  ASSERT_EQ(rl.total(), whole.total());
  for (std::size_t bin = 0; bin < whole.bins(); ++bin) {
    EXPECT_EQ(lr.count(bin), whole.count(bin));  // integer counts: exact
    EXPECT_EQ(rl.count(bin), whole.count(bin));  // and fully commutative
  }
}

TEST(HistogramMerge, IncompatibleBinningThrows) {
  Histogram a(0.0, 10.0, 10);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 10)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 10)), std::invalid_argument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 10, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 5, 5), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
}

TEST(DailySeries, AccumulatesByDay) {
  DailySeries s(5);
  s.add(0);
  s.add(time::kDay + 5);
  s.add(time::kDay * 2 - 1);
  s.add_day(4, 10);
  s.add(time::kDay * 99);  // out of range, ignored
  EXPECT_EQ(s.at(0), 1u);
  EXPECT_EQ(s.at(1), 2u);
  EXPECT_EQ(s.at(4), 10u);
  EXPECT_EQ(s.total(), 13u);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(1234567), "1,234,567");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::integer(0), "0");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Points, LogPointsSpanRange) {
  const auto pts = log_points(1.0, 1000.0, 4);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_NEAR(pts[0], 1.0, 1e-9);
  EXPECT_NEAR(pts[1], 10.0, 1e-6);
  EXPECT_NEAR(pts[3], 1000.0, 1e-6);
  EXPECT_THROW(log_points(0.0, 10.0, 4), std::invalid_argument);
}

TEST(Points, LinearPointsSpanRange) {
  const auto pts = linear_points(0.0, 9.0, 10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts[0], 0.0);
  EXPECT_DOUBLE_EQ(pts[9], 9.0);
  EXPECT_DOUBLE_EQ(pts[5], 5.0);
}

}  // namespace
}  // namespace livesim::stats
