#include <gtest/gtest.h>

#include <cmath>

#include "livesim/client/playback.h"
#include "livesim/util/rng.h"

namespace livesim::client {
namespace {

constexpr DurationUs kFrame = 40 * time::kMillisecond;

// Feeds n frames arriving with a constant delay after their media time.
void feed_steady(PlaybackSchedule& p, int n, DurationUs delay,
                 DurationUs unit = kFrame) {
  for (int i = 0; i < n; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * unit;
    p.on_arrival(media + delay, media, unit);
  }
}

TEST(Playback, SteadyStreamNoStalls) {
  PlaybackSchedule p(0);
  feed_steady(p, 100, 500 * time::kMillisecond);
  EXPECT_EQ(p.stall_ratio(), 0.0);
  EXPECT_EQ(p.units_played(), 100u);
  EXPECT_EQ(p.units_discarded(), 0u);
  // Constant-delay arrivals play immediately: no buffering wait.
  EXPECT_NEAR(p.buffering_delay_s().mean(), 0.0, 1e-9);
}

TEST(Playback, PreBufferAddsDelay) {
  PlaybackSchedule p(1 * time::kSecond);  // 25 frames of pre-buffer
  feed_steady(p, 100, 500 * time::kMillisecond);
  EXPECT_EQ(p.stall_ratio(), 0.0);
  // Playback anchors at the arrival completing 1 s of content, so earlier
  // frames waited up to ~1 s; the long-run average is ~the pre-buffer
  // because the schedule runs 1 s behind a steady arrival stream.
  EXPECT_NEAR(p.buffering_delay_s().mean(), 0.96, 0.08);
}

TEST(Playback, LateUnitDiscardedAndCountsAsStall) {
  PlaybackSchedule p(0);
  // Frames 0..9 arrive on time; frame 10 arrives 5 s late; 11.. on time.
  for (int i = 0; i < 20; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kFrame;
    const DurationUs delay =
        i == 10 ? 5 * time::kSecond : 10 * time::kMillisecond;
    p.on_arrival(media + delay, media, kFrame);
  }
  EXPECT_EQ(p.units_discarded(), 1u);
  EXPECT_NEAR(p.stall_ratio(), 1.0 / 20.0, 1e-9);
}

TEST(Playback, SlackWithinSlotStillPlays) {
  PlaybackSchedule p(0);
  // Every other frame is late by half a frame: still inside its slot.
  for (int i = 0; i < 50; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kFrame;
    const DurationUs jitter = (i % 2) ? kFrame / 2 : 0;
    p.on_arrival(media + jitter, media, kFrame);
  }
  EXPECT_EQ(p.units_discarded(), 0u);
}

TEST(Playback, PreBufferAbsorbsOutage) {
  // A 2 s arrival gap mid-stream: P=0 discards, P=3s plays everything.
  auto run = [](DurationUs prebuffer) {
    PlaybackSchedule p(prebuffer);
    for (int i = 0; i < 200; ++i) {
      const DurationUs media = static_cast<DurationUs>(i) * kFrame;
      DurationUs delay = 20 * time::kMillisecond;
      // Frames 100-149 held up by an outage ending at media time of
      // frame 150: they all arrive in a burst.
      if (i >= 100 && i < 150)
        delay = (150 - i) * kFrame + 20 * time::kMillisecond;
      p.on_arrival(media + delay, media, kFrame);
    }
    return p;
  };
  const auto p0 = run(0);
  const auto p3 = run(3 * time::kSecond);
  EXPECT_GT(p0.stall_ratio(), 0.15);
  EXPECT_EQ(p3.stall_ratio(), 0.0);
  EXPECT_GT(p3.buffering_delay_s().mean(), p0.buffering_delay_s().mean());
}

TEST(Playback, NeverStartedIsFullStall) {
  PlaybackSchedule p(10 * time::kSecond);
  feed_steady(p, 10, 0);  // only 0.4 s of content, pre-buffer never fills
  EXPECT_FALSE(p.started());
  EXPECT_EQ(p.stall_ratio(), 1.0);
}

TEST(Playback, EmptyScheduleSafe) {
  PlaybackSchedule p(time::kSecond);
  EXPECT_EQ(p.stall_ratio(), 0.0);
  EXPECT_EQ(p.media_offered(), 0);
}

TEST(Playback, ChunkGranularity) {
  PlaybackSchedule p(9 * time::kSecond);  // 3 chunks of 3 s
  const DurationUs chunk = 3 * time::kSecond;
  // Chunks arrive every 3 s with ~4 s pipeline delay.
  for (int i = 0; i < 20; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * chunk;
    p.on_arrival(media + 4 * time::kSecond, media, chunk);
  }
  EXPECT_EQ(p.stall_ratio(), 0.0);
  // Anchor waits for 3 chunks -> the rest of the stream waits ~2 chunk
  // intervals in the buffer.
  EXPECT_NEAR(p.buffering_delay_s().mean(), 5.4, 0.8);
}

TEST(Playback, MidJoinUsesFirstSeenMediaAsAnchor) {
  PlaybackSchedule p(0);
  // Viewer joins at media offset 100 s.
  const DurationUs base = 100 * time::kSecond;
  for (int i = 0; i < 50; ++i) {
    const DurationUs media = base + static_cast<DurationUs>(i) * kFrame;
    p.on_arrival(media + time::kSecond, media, kFrame);
  }
  EXPECT_EQ(p.units_played(), 50u);
  EXPECT_EQ(p.stall_ratio(), 0.0);
}

struct SweepCase {
  DurationUs prebuffer;
};

class PreBufferSweep : public ::testing::TestWithParam<int> {};

// The paper's §6 trade-off as a property: larger pre-buffer never
// increases stalls and never decreases buffering delay (same trace).
TEST_P(PreBufferSweep, MonotoneTradeoff) {
  const int p_ms = GetParam();
  auto run = [](DurationUs prebuffer) {
    PlaybackSchedule p(prebuffer);
    livesim::Rng rng(42);
    DurationUs queue_release = 0;
    for (int i = 0; i < 1000; ++i) {
      const DurationUs media = static_cast<DurationUs>(i) * kFrame;
      DurationUs delay = static_cast<DurationUs>(
          20000 + 10000 * std::abs(rng.normal(0.0, 1.0)));
      if (rng.bernoulli(0.01))  // occasional 1 s outage
        queue_release = media + time::kSecond;
      if (media < queue_release) delay += queue_release - media;
      p.on_arrival(media + delay, media, kFrame);
    }
    return std::pair{p.stall_ratio(), p.buffering_delay_s().mean()};
  };
  const auto [stall_small, delay_small] = run(p_ms * time::kMillisecond);
  const auto [stall_big, delay_big] = run((p_ms + 500) * time::kMillisecond);
  EXPECT_LE(stall_big, stall_small + 1e-9);
  EXPECT_GE(delay_big, delay_small - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PreBufferSweep,
                         ::testing::Values(0, 250, 500, 1000, 3000, 6000));

}  // namespace
}  // namespace livesim::client
