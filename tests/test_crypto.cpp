#include <gtest/gtest.h>

#include <cmath>

#include "livesim/protocol/rtmps.h"
#include "livesim/security/sha256.h"
#include "livesim/security/wots.h"
#include "livesim/util/rng.h"

namespace livesim::security {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog etc";
  Sha256 h;
  for (char c : msg) h.update(std::string(1, c));
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(msg)));
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(msg);
    Sha256 b;
    b.update(msg.substr(0, len / 2));
    b.update(msg.substr(len / 2));
    EXPECT_EQ(to_hex(a.finish()), to_hex(b.finish())) << "len " << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(std::string("abc"));
  const Digest first = h.finish();
  h.reset();
  h.update(std::string("abc"));
  EXPECT_TRUE(digest_equal(first, h.finish()));
}

// RFC 4231 HMAC-SHA256 test cases.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(bytes("Jefe"), bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestEqual, ConstantTimeSemantics) {
  Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Wots, SignVerifyRoundTrip) {
  const Digest seed = Sha256::hash(std::string("seed"));
  const auto kp = Wots::derive(seed, 0);
  const Digest msg = Sha256::hash(std::string("message"));
  const auto sig = Wots::sign(kp, msg);
  EXPECT_EQ(sig.size(), Wots::kSignatureBytes);
  EXPECT_TRUE(digest_equal(Wots::recover_public_key(sig, msg), kp.public_key));
}

TEST(Wots, DifferentMessageFailsVerification) {
  const Digest seed = Sha256::hash(std::string("seed"));
  const auto kp = Wots::derive(seed, 0);
  const auto sig = Wots::sign(kp, Sha256::hash(std::string("m1")));
  EXPECT_FALSE(digest_equal(
      Wots::recover_public_key(sig, Sha256::hash(std::string("m2"))),
      kp.public_key));
}

TEST(Wots, TamperedSignatureFails) {
  const Digest seed = Sha256::hash(std::string("seed"));
  const auto kp = Wots::derive(seed, 3);
  const Digest msg = Sha256::hash(std::string("message"));
  auto sig = Wots::sign(kp, msg);
  sig[100] ^= 0x01;
  EXPECT_FALSE(digest_equal(Wots::recover_public_key(sig, msg), kp.public_key));
}

TEST(Wots, MalformedSignatureRejected) {
  const std::vector<std::uint8_t> short_sig(10, 0);
  const Digest pk = Wots::recover_public_key(short_sig, Digest{});
  EXPECT_TRUE(digest_equal(pk, Digest{}));  // sentinel zero digest
}

TEST(Wots, KeysAreIndexSeparated) {
  const Digest seed = Sha256::hash(std::string("seed"));
  EXPECT_FALSE(digest_equal(Wots::derive(seed, 0).public_key,
                            Wots::derive(seed, 1).public_key));
}

TEST(Merkle, RequiresPowerOfTwoLeaves) {
  std::vector<Digest> three(3);
  EXPECT_THROW(MerkleTree{three}, std::invalid_argument);
  std::vector<Digest> zero;
  EXPECT_THROW(MerkleTree{zero}, std::invalid_argument);
}

class MerkleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProperty, AllLeavesVerify) {
  const std::size_t n = GetParam();
  std::vector<Digest> leaves;
  for (std::size_t i = 0; i < n; ++i)
    leaves.push_back(Sha256::hash("leaf" + std::to_string(i)));
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const auto path = tree.auth_path(i);
    EXPECT_EQ(path.size(), static_cast<std::size_t>(std::log2(n)));
    EXPECT_TRUE(MerkleTree::verify(leaves[i], i, path, tree.root()));
    // Wrong index fails (meaningless for a single-leaf tree).
    if (n > 1) {
      EXPECT_FALSE(
          MerkleTree::verify(leaves[i], (i + 1) % n, path, tree.root()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProperty,
                         ::testing::Values(1, 2, 4, 8, 32, 256));

TEST(Merkle, TamperedLeafFails) {
  std::vector<Digest> leaves(4);
  for (std::size_t i = 0; i < 4; ++i)
    leaves[i] = Sha256::hash("x" + std::to_string(i));
  MerkleTree tree(leaves);
  Digest fake = leaves[2];
  fake[0] ^= 0xFF;
  EXPECT_FALSE(MerkleTree::verify(fake, 2, tree.auth_path(2), tree.root()));
}

TEST(SecureChannel, SealOpenRoundTrip) {
  protocol::SecureChannel::Key key{};
  key[0] = 42;
  protocol::SecureChannel sender(key), receiver(key);
  const auto msg = bytes("hello secure world");
  const auto rec = sender.seal(msg);
  EXPECT_GT(rec.size(), msg.size());  // seq + tag overhead
  const auto opened = receiver.open(rec);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(SecureChannel, CiphertextDiffersFromPlaintext) {
  protocol::SecureChannel::Key key{};
  protocol::SecureChannel sender(key);
  const auto msg = bytes("attack at dawn, attack at dawn!!");
  const auto rec = sender.seal(msg);
  const std::string raw(rec.begin(), rec.end());
  EXPECT_EQ(raw.find("attack"), std::string::npos);
}

TEST(SecureChannel, TamperDetected) {
  protocol::SecureChannel::Key key{};
  protocol::SecureChannel sender(key), receiver(key);
  auto rec = sender.seal(bytes("payload"));
  rec[10] ^= 0x01;
  EXPECT_FALSE(receiver.open(rec).has_value());
}

TEST(SecureChannel, ReplayRejected) {
  protocol::SecureChannel::Key key{};
  protocol::SecureChannel sender(key), receiver(key);
  const auto rec = sender.seal(bytes("one"));
  ASSERT_TRUE(receiver.open(rec).has_value());
  EXPECT_FALSE(receiver.open(rec).has_value());  // same seq again
}

TEST(SecureChannel, WrongKeyFails) {
  protocol::SecureChannel::Key k1{}, k2{};
  k2[5] = 9;
  protocol::SecureChannel sender(k1), receiver(k2);
  EXPECT_FALSE(receiver.open(sender.seal(bytes("x"))).has_value());
}

TEST(SecureChannel, MultiRecordStream) {
  protocol::SecureChannel::Key key{};
  protocol::SecureChannel sender(key), receiver(key);
  for (int i = 0; i < 50; ++i) {
    const auto msg = bytes("frame " + std::to_string(i));
    const auto opened = receiver.open(sender.seal(msg));
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, msg);
  }
  EXPECT_EQ(sender.records_sealed(), 50u);
}

class WotsRandomized : public ::testing::TestWithParam<int> {};

// Property: random messages always round-trip; a signature for one
// message never validates another (existential-unforgeability smoke).
TEST_P(WotsRandomized, SignVerifyAndCrossMessageRejection) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Digest seed = Sha256::hash("seed" + std::to_string(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    const auto kp = Wots::derive(seed, static_cast<std::uint64_t>(trial));
    Digest m1{}, m2{};
    for (auto& b : m1) b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& b : m2) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto sig = Wots::sign(kp, m1);
    ASSERT_TRUE(digest_equal(Wots::recover_public_key(sig, m1),
                             kp.public_key));
    ASSERT_FALSE(digest_equal(Wots::recover_public_key(sig, m2),
                              kp.public_key));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WotsRandomized, ::testing::Range(1, 5));

TEST(SecureChannel, AnySingleByteFlipDetected) {
  protocol::SecureChannel::Key key{};
  key[3] = 7;
  protocol::SecureChannel sender(key);
  const auto rec = sender.seal(bytes("the quick brown fox"));
  for (std::size_t pos = 0; pos < rec.size(); ++pos) {
    protocol::SecureChannel receiver(key);  // fresh recv_seq for each try
    auto mutated = rec;
    mutated[pos] ^= 0x01;
    EXPECT_FALSE(receiver.open(mutated).has_value()) << "byte " << pos;
  }
  // Sanity: the unmodified record still opens.
  protocol::SecureChannel receiver(key);
  EXPECT_TRUE(receiver.open(rec).has_value());
}

TEST(SecureChannel, TruncationAndExtensionDetected) {
  protocol::SecureChannel::Key key{};
  protocol::SecureChannel sender(key);
  const auto rec = sender.seal(bytes("payload"));
  for (std::size_t cut : {1u, 8u, 32u}) {
    protocol::SecureChannel receiver(key);
    auto shorter = rec;
    shorter.resize(rec.size() - cut);
    EXPECT_FALSE(receiver.open(shorter).has_value());
  }
  protocol::SecureChannel receiver(key);
  auto longer = rec;
  longer.push_back(0x00);
  EXPECT_FALSE(receiver.open(longer).has_value());
}

TEST(SecureChannel, EmptyPayloadRoundTrips) {
  protocol::SecureChannel::Key key{};
  protocol::SecureChannel sender(key), receiver(key);
  const auto opened = receiver.open(sender.seal({}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

}  // namespace
}  // namespace livesim::security
