// A celebrity goes live (§3.2: "celebrities like Ellen DeGeneres already
// have over one million followers, thus creating built-in audiences").
//
// Generates a Periscope-like follow graph, picks its biggest account and
// an average user, and lets the notification fan-out drive audiences into
// the service -- Figure 7's follower/viewer correlation produced by the
// actual mechanism rather than a statistical coupling.
#include <algorithm>
#include <cstdio>

#include "livesim/core/notifications.h"
#include "livesim/social/generators.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;

  // A scaled-down Periscope follow graph.
  auto graph = social::generate(social::GraphGenParams::periscope_like(40000));
  graph.build_reverse();

  // Find the most-followed account and a median one.
  std::uint32_t celebrity = 0, median_user = 0;
  std::vector<std::uint32_t> in_degrees(graph.nodes());
  for (std::uint32_t u = 0; u < graph.nodes(); ++u) {
    in_degrees[u] = graph.in_degree(u);
    if (graph.in_degree(u) > graph.in_degree(celebrity)) celebrity = u;
  }
  auto sorted = in_degrees;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const std::uint32_t median_followers = sorted[sorted.size() / 2];
  for (std::uint32_t u = 0; u < graph.nodes(); ++u)
    if (graph.in_degree(u) == median_followers) {
      median_user = u;
      break;
    }

  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::LivestreamService::Config cfg;
  cfg.seed = 77;
  core::LivestreamService service(sim, catalog, cfg);
  core::NotificationService::Params np;
  np.join_probability = 0.05;
  core::NotificationService notify(sim, graph, service, np, Rng(78));

  const auto celeb_cast =
      service.start_broadcast({34.05, -118.24}, 5 * time::kMinute);
  notify.broadcast_started(celebrity, celeb_cast);
  const auto median_cast =
      service.start_broadcast({41.88, -87.63}, 5 * time::kMinute);
  notify.broadcast_started(median_user, median_cast);
  sim.run();

  const auto ci = *service.info(celeb_cast);
  const auto mi = *service.info(median_cast);

  stats::print_banner("Celebrity vs median broadcaster (Figure 7's mechanism)");
  stats::Table table({"Broadcaster", "Followers", "Viewers", "RTMP/interactive",
                      "HLS/lagged"});
  table.add_row({"celebrity",
                 stats::Table::integer(graph.in_degree(celebrity)),
                 stats::Table::integer(ci.rtmp_viewers + ci.hls_viewers),
                 stats::Table::integer(ci.rtmp_viewers),
                 stats::Table::integer(ci.hls_viewers)});
  table.add_row({"median user",
                 stats::Table::integer(graph.in_degree(median_user)),
                 stats::Table::integer(mi.rtmp_viewers + mi.hls_viewers),
                 stats::Table::integer(mi.rtmp_viewers),
                 stats::Table::integer(mi.hls_viewers)});
  table.print();

  std::printf("\nNotifications pushed: %s; joins driven: %s\n",
              stats::Table::integer(static_cast<std::int64_t>(
                  notify.notifications_sent())).c_str(),
              stats::Table::integer(static_cast<std::int64_t>(
                  notify.joins_driven())).c_str());
  if (ci.hls_viewers > 0) {
    std::printf(
        "The celebrity's audience overflows the %u RTMP slots within "
        "seconds: %s fans watch ~11 s behind and cannot comment -- the "
        "interactivity ceiling the paper ends on.\n",
        100u, stats::Table::integer(ci.hls_viewers).c_str());
  }
  return 0;
}
