// Securing a livestream against the §7 hijacking attack.
//
// Walks the full story on real bytes: a broadcaster streams over RTMP, a
// WiFi man-in-the-middle swaps the picture for black frames (silently --
// the server accepts everything), and then the same broadcast runs again
// with the hash-chain signature defense enabled, where the ingest server
// kills the stream at the first tampered window.
#include <cstdio>

#include "livesim/media/encoder.h"
#include "livesim/protocol/rtmp.h"
#include "livesim/security/attack.h"
#include "livesim/security/stream_sign.h"

namespace {
using namespace livesim;

std::vector<media::VideoFrame> record_broadcast(int seconds) {
  media::FrameSource camera({}, Rng(7));
  Rng pixels(8);
  std::vector<media::VideoFrame> frames;
  for (int i = 0; i < seconds * 25; ++i) {
    auto f = camera.next();
    f.payload.resize(f.size_bytes);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(pixels.next_u64());
    frames.push_back(std::move(f));
  }
  return frames;
}
}  // namespace

int main() {
  using namespace livesim;
  const auto frames = record_broadcast(20);

  std::printf("== Act 1: the deployed protocol (unauthenticated RTMP) ==\n");
  {
    security::TamperAttacker attacker;  // on the coffee-shop WiFi
    int black = 0, accepted = 0;
    for (auto f : frames) {
      const auto wire = protocol::frame_to_wire(f);
      const auto at_server = protocol::wire_to_frame(attacker.intercept(wire));
      if (!at_server) continue;
      ++accepted;
      bool is_black = !at_server->payload.empty();
      for (auto b : at_server->payload) is_black &= (b == 0);
      black += is_black ? 1 : 0;
    }
    std::printf("  server accepted %d/%zu frames, %d of them replaced by "
                "black -- nobody noticed.\n",
                accepted, frames.size(), black);
    std::printf("  broadcaster's screen: original video. viewers' screens: "
                "black. (Figure 18)\n\n");
  }

  std::printf("== Act 2: the paper's defense (signed frame-hash windows) ==\n");
  {
    // Setup over HTTPS: the broadcaster derives one-time keys and shares
    // only the 32-byte Merkle root with the server (and viewers).
    const auto seed = security::Sha256::hash(std::string("device-secret"));
    security::StreamSigner signer(seed, 64, 25);
    security::StreamVerifier server(signer.root(), 25);
    security::TamperAttacker attacker;

    int window = 0;
    for (auto f : frames) {
      signer.process(f);
      const auto at_server =
          protocol::wire_to_frame(attacker.intercept(protocol::frame_to_wire(f)));
      if (!at_server) continue;
      const auto verdict = server.process(*at_server);
      if (verdict == security::StreamVerifier::Result::kVerified) ++window;
      if (verdict == security::StreamVerifier::Result::kTampered) {
        std::printf("  window %d FAILED verification at frame %llu -> "
                    "stream terminated, broadcaster alerted.\n",
                    window, static_cast<unsigned long long>(f.seq));
        break;
      }
    }
    std::printf("  detection within one signing window (~1 s of video); "
                "setup cost: one 32-byte root over HTTPS.\n\n");
  }

  std::printf("== Act 3: clean broadcast with defense on ==\n");
  {
    const auto seed = security::Sha256::hash(std::string("device-secret"));
    security::StreamSigner signer(seed, 64, 25);
    security::StreamVerifier server(signer.root(), 25);
    std::uint64_t verified = 0;
    for (auto f : frames) {
      signer.process(f);
      if (server.process(f) == security::StreamVerifier::Result::kVerified)
        ++verified;
    }
    std::printf("  %llu/%d windows verified, zero false alarms, %.1f KB "
                "signature overhead for 20 s of video.\n",
                static_cast<unsigned long long>(verified), 20,
                static_cast<double>(signer.signatures_issued()) *
                    (security::Wots::kSignatureBytes + 230) / 1024.0);
  }
  return 0;
}
