// A busy hour on the service: broadcasts arrive, audiences pile in, the
// first-100 policy sorts them into RTMP and HLS cohorts, hearts stream
// back, and the measurement crawler (the paper's own §3.1 apparatus)
// watches the global list -- all in one deterministic simulation.
#include <cstdio>

#include "livesim/core/service.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  core::LivestreamService::Config cfg;
  cfg.rtmp_slot_cap = 100;
  cfg.commenter_cap = 100;
  cfg.seed = 2016;
  core::LivestreamService service(sim, catalog, cfg);

  // The paper's crawler watches the global list from 20 accounts.
  crawler::ListCrawler crawler(sim, service.global_list(), {}, Rng(5));
  crawler.start();

  Rng rng(7);
  geo::UserGeoSampler geo_sampler;
  const DurationUs kHour = time::kHour / 4;  // quarter-hour, keeps it snappy
  std::vector<core::LivestreamService::ViewerHandle> audience;

  // Broadcast arrivals: Poisson, ~one every 20 s; each draws a skewed
  // audience that joins over the first quarter of its life.
  std::function<void()> arrival = [&] {
    if (sim.now() >= kHour) return;
    const auto where = geo_sampler.sample(rng);
    const auto length = time::from_seconds(
        std::min(600.0, std::max(45.0, rng.lognormal(std::log(150.0), 0.9))));
    const auto id = service.start_broadcast(where, length);

    const auto viewers = static_cast<int>(
        std::min(400.0, rng.lognormal(std::log(12.0), 1.4)));
    for (int v = 0; v < viewers; ++v) {
      const DurationUs when = static_cast<DurationUs>(
          rng.uniform() * static_cast<double>(length) * 0.25);
      sim.schedule_in(when, [&, id] {
        if (auto h = service.join(id, geo_sampler.sample(rng))) {
          audience.push_back(*h);
          // Engaged viewers heart a few times during the broadcast.
          if (rng.bernoulli(0.3)) {
            const auto handle = *h;
            for (int k = 0; k < 3; ++k) {
              sim.schedule_in(
                  time::from_seconds(15.0 + rng.uniform() * 60.0),
                  [&service, handle] { service.send_heart(handle); });
            }
          }
        }
      });
    }
    sim.schedule_in(time::from_seconds(rng.exponential(20.0)), arrival);
  };
  sim.schedule_in(0, arrival);
  sim.schedule_at(kHour + time::kMinute, [&] { crawler.stop(); });
  sim.run();

  // --- dashboard ---
  std::uint64_t broadcasts = 0, rtmp = 0, hls = 0, hearts = 0;
  std::uint64_t crawled = 0;
  for (std::uint64_t i = 0;; ++i) {
    const auto info = service.info(BroadcastId{i});
    if (!info) break;
    ++broadcasts;
    rtmp += info->rtmp_viewers;
    hls += info->hls_viewers;
    hearts += info->hearts;
    if (crawler.has_seen(info->id)) ++crawled;
  }

  stats::print_banner("A quarter-hour on the service");
  std::printf("broadcasts started:       %llu (crawler captured %llu = "
              "%.1f%%)\n",
              static_cast<unsigned long long>(broadcasts),
              static_cast<unsigned long long>(crawled),
              100.0 * static_cast<double>(crawled) /
                  static_cast<double>(broadcasts)),
  std::printf("viewers served:           %llu RTMP (interactive), %llu HLS\n",
              static_cast<unsigned long long>(rtmp),
              static_cast<unsigned long long>(hls));
  std::printf("hearts delivered:         %llu\n",
              static_cast<unsigned long long>(hearts));
  std::printf("heart feedback lag:       RTMP %.1fs vs HLS %.1fs (the "
              "'delayed applause' gap)\n",
              service.rtmp_feedback_lag_s().mean(),
              service.hls_feedback_lag_s().mean());
  std::printf("comments:                 capped at the first %u RTMP "
              "joiners per broadcast\n",
              cfg.commenter_cap);
  return 0;
}
