// The paper's motivating scenario (§1): a broadcaster polls the audience.
//
// "A delayed user will likely enter her vote after the real-time vote has
// concluded, thus discounting her input" -- and "delayed hearts will be
// misinterpreted by the broadcaster as positive feedback for a later
// event in the stream."
//
// This example runs a broadcast where the broadcaster asks a question at
// t=30 s and closes voting 10 s later, with hearts flowing back over the
// PubNub-style message channel. RTMP viewers (the privileged first ~100)
// make it; most HLS viewers don't.
#include <cstdio>

#include "livesim/core/broadcast_session.h"
#include "livesim/msg/pubsub.h"
#include "livesim/stats/accumulator.h"

int main() {
  using namespace livesim;

  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  core::SessionConfig cfg;
  cfg.broadcast_len = 2 * time::kMinute;
  cfg.rtmp_viewers = 20;
  cfg.hls_viewers = 60;
  cfg.crawler_pollers = true;
  cfg.seed = 99;

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  const double rtmp_lag = session.rtmp_breakdown().total_s();
  const double hls_lag = session.hls_breakdown().total_s();

  // The poll: asked at t=30 s of *media* time, closes after a 10 s window
  // of *wall* time. A viewer sees the question at media_ts + their lag,
  // and their vote flies back over the message channel (~0.15 s).
  const double kAsk = 30.0, kWindow = 10.0, kMsgDelay = 0.15;
  const double kThinking = 2.0;  // humans need a moment to tap

  msg::CommenterPolicy commenters(100);
  int votes_in = 0, votes_late = 0, rtmp_in = 0, hls_in = 0;
  stats::Accumulator heart_lag;

  for (const auto& v : session.viewer_results()) {
    const double lag = v.hls ? hls_lag : rtmp_lag;
    const double vote_arrives = kAsk + lag + kThinking + kMsgDelay;
    const bool counted = vote_arrives <= kAsk + kWindow;
    (counted ? votes_in : votes_late) += 1;
    if (counted) (v.hls ? hls_in : rtmp_in) += 1;
    commenters.admit_commenter();
    // A heart sent in reaction to the question lands lag+msg later; the
    // broadcaster is by then lag seconds further into the stream.
    heart_lag.add(lag + kMsgDelay);
  }

  std::printf("Audience: %d RTMP + %d HLS viewers; delays %.1fs / %.1fs\n",
              20, 60, rtmp_lag, hls_lag);
  std::printf("\nPoll asked at t=%.0fs, voting closes at t=%.0fs:\n", kAsk,
              kAsk + kWindow);
  std::printf("  votes counted:  %d (RTMP %d, HLS %d)\n", votes_in, rtmp_in,
              hls_in);
  std::printf("  votes too late: %d -- all HLS viewers whose lag + reaction "
              "time overshot the window\n",
              votes_late);
  std::printf("\nHearts: mean feedback lag %.1f s. A heart for the joke at "
              "t=30 arrives while the broadcaster is at t=%.1f -- "
              "attributed to the wrong moment (the paper's 'delayed "
              "applause' problem).\n",
              heart_lag.mean(), kAsk + heart_lag.mean());
  std::printf("\nOnly the first %u joiners may comment at all (CommenterPolicy"
              "), so interactive group features are capped exactly where "
              "RTMP capacity ends.\n",
              commenters.cap());
  return 0;
}
