// Quickstart: simulate one Periscope-style broadcast end to end and print
// where every second of delay comes from.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "livesim/core/broadcast_session.h"

int main() {
  using namespace livesim;

  // 1. A simulator and the paper-era CDN footprint (8 Wowza ingest sites
  //    on EC2, 23 Fastly edge sites).
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  // 2. Configure a broadcast: a streamer in San Francisco, 5 early
  //    viewers on low-latency RTMP, 30 later viewers on chunked HLS.
  core::SessionConfig cfg;
  cfg.broadcast_len = 2 * time::kMinute;
  cfg.broadcaster_location = {37.77, -122.42};
  cfg.rtmp_viewers = 5;
  cfg.hls_viewers = 30;
  cfg.crawler_pollers = true;  // keep edge caches fresh, as real crowds do
  cfg.seed = 1;

  // 3. Run it.
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  // 4. Read the results.
  const auto& rtmp = session.rtmp_breakdown();
  const auto& hls = session.hls_breakdown();
  std::printf("Broadcast ingested at %s, %llu frames\n",
              catalog.get(session.ingest_site()).city.c_str(),
              static_cast<unsigned long long>(
                  session.ingest().frames_ingested()));
  std::printf("\nRTMP path (the first ~100 viewers, the ones who may comment):\n");
  std::printf("  upload %.2fs + last-mile %.2fs + buffering %.2fs = %.2fs\n",
              rtmp.upload_s.mean(), rtmp.last_mile_s.mean(),
              rtmp.buffering_s.mean(), rtmp.total_s());
  std::printf("\nHLS path (everyone else):\n");
  std::printf(
      "  upload %.2fs + chunking %.2fs + wowza2fastly %.2fs + polling %.2fs\n"
      "  + last-mile %.2fs + buffering %.2fs = %.2fs\n",
      hls.upload_s.mean(), hls.chunking_s.mean(), hls.w2f_s.mean(),
      hls.polling_s.mean(), hls.last_mile_s.mean(), hls.buffering_s.mean(),
      hls.total_s());
  std::printf("\nAn HLS viewer lags an RTMP viewer by %.1f seconds -- the "
              "price of scalability.\n",
              hls.total_s() - rtmp.total_s());

  std::printf("\nPer-viewer playback quality:\n");
  for (const auto& v : session.viewer_results()) {
    static int shown = 0;
    if (shown++ >= 6) break;
    std::printf("  %s viewer @(%.0f,%.0f): stall %.1f%%, buffer wait %.2fs\n",
                v.hls ? "HLS " : "RTMP", v.location.lat_deg,
                v.location.lon_deg, v.stall_ratio * 100,
                v.mean_buffering_s);
  }
  return 0;
}
