// Capacity planning: "can personalized livestreams continue to scale?"
//
// Combines the workload model (growth in broadcasts and audiences, §3)
// with the server resource model (§5.2) to estimate the ingest fleet a
// Periscope-scale service needs week by week -- and what the RTMP
// commenter policy costs at the fleet level. This is the operator's view
// of the paper's scalability-vs-interactivity tension.
#include <cstdio>

#include "livesim/cdn/resource_model.h"
#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

int main() {
  using namespace livesim;
  const auto profile = workload::AppProfile::periscope();
  workload::Generator gen(profile, 1.0 / 200.0, 31337);
  const auto ds = gen.generate();

  // Aggregate per-week concurrent load: broadcasts alive at once and the
  // RTMP/HLS viewer split under the 100-slot policy.
  struct Week {
    double concurrent_broadcasts = 0;
    double rtmp_viewers = 0;
    double hls_viewers = 0;
  };
  std::vector<Week> weeks(profile.days / 7 + 1);
  for (const auto& b : ds.broadcasts) {
    if (!b.captured) continue;
    auto& w = weeks[b.day / 7];
    // A broadcast of length L contributes L/86400 of a concurrent slot.
    const double slot = time::to_seconds(b.length) / 86400.0;
    w.concurrent_broadcasts += slot * 200.0;  // undo the 1/200 scale
    const auto rtmp = std::min<std::uint32_t>(b.total_viewers(), 100);
    w.rtmp_viewers += slot * 200.0 * rtmp;
    w.hls_viewers += slot * 200.0 * b.hls_viewers(100);
  }

  const cdn::ResourceModel model;
  stats::print_banner("Capacity plan: Periscope May-Aug 2015 (modeled)");
  stats::Table table({"Week", "Concurrent bcasts", "RTMP viewers",
                      "HLS viewers", "Ingest cores", "Edge cores"});
  for (std::size_t w = 0; w + 1 < weeks.size(); ++w) {
    const auto& wk = weeks[w];
    if (wk.concurrent_broadcasts == 0) continue;
    // Per concurrent broadcast: ingest does frame handling + RTMP fanout;
    // edges absorb HLS polling.
    const double avg_rtmp = wk.rtmp_viewers / wk.concurrent_broadcasts;
    const double avg_hls = wk.hls_viewers / wk.concurrent_broadcasts;
    const double ingest_cores =
        wk.concurrent_broadcasts *
        model.rtmp_cpu_percent(static_cast<std::uint32_t>(avg_rtmp), 25.0) /
        100.0;
    const double edge_cores =
        wk.concurrent_broadcasts *
        (model.hls_cpu_percent(static_cast<std::uint32_t>(avg_hls), 25.0,
                               2.8, 3.0) -
         model.baseline_percent) /
        100.0;
    table.add_row({stats::Table::integer(static_cast<std::int64_t>(w)),
                   stats::Table::integer(static_cast<std::int64_t>(
                       wk.concurrent_broadcasts)),
                   stats::Table::integer(static_cast<std::int64_t>(
                       wk.rtmp_viewers)),
                   stats::Table::integer(static_cast<std::int64_t>(
                       wk.hls_viewers)),
                   stats::Table::num(ingest_cores, 0),
                   stats::Table::num(edge_cores, 0)});
  }
  table.print();
  std::printf(
      "\nIngest (RTMP fan-out) cores dominate and track broadcast growth "
      "~linearly -- this is why Periscope caps interactive viewers at "
      "~100 and ships everyone else to chunked HLS.\n");
  return 0;
}
