// The rain puddle goes viral (§3.2's anecdote, operationalized).
//
// "A single Periscope of a large rain puddle collected hundreds of
// thousands of viewers, and had more than 20,000 simultaneous viewers at
// its peak." This example reconstructs such a broadcast's audience
// dynamics and asks what the paper's architecture actually does with it:
// who lands on RTMP vs HLS, what each cohort's delay and interactivity
// look like, and what the servers carry at the peak.
#include <cstdio>

#include "livesim/cdn/resource_model.h"
#include "livesim/stats/report.h"
#include "livesim/workload/audience.h"

int main() {
  using namespace livesim;

  // #DrummondPuddleWatch: ~4 hours, viral arrivals, 280K total viewers.
  workload::AudienceParams p;
  p.total_viewers = 280000;
  p.broadcast_len = 4 * time::kHour;
  p.virality = 4.0;          // word spreads on Twitter
  p.median_watch_s = 240.0;  // people stay for the puddle
  p.watch_sigma = 1.2;
  p.seed = 2016;

  const auto audience = workload::generate_audience(p);
  const auto curve = workload::concurrency(audience, p.broadcast_len,
                                           time::kMinute);

  stats::print_banner("#puddle: audience dynamics");
  std::printf("total viewers: %s; peak concurrent: %s at t=%.0f min "
              "(paper anecdote: 'more than 20,000 simultaneous')\n",
              stats::Table::integer(p.total_viewers).c_str(),
              stats::Table::integer(curve.peak).c_str(),
              time::to_seconds(curve.peak_at) / 60.0);

  std::printf("\nconcurrent viewers over time (one row per 20 min):\n");
  for (std::size_t i = 0; i < curve.concurrent.size(); i += 20) {
    const int bars = static_cast<int>(curve.concurrent[i] /
                                      (curve.peak / 50 + 1));
    std::printf("  t=%3zumin %7s |%s\n", i,
                stats::Table::integer(curve.concurrent[i]).c_str(),
                std::string(static_cast<std::size_t>(bars), '#').c_str());
  }

  // What the architecture does with it.
  const std::uint32_t kSlots = 100;
  std::uint32_t rtmp = 0;
  for (std::size_t i = 0; i < audience.size() && rtmp < kSlots; ++i) ++rtmp;
  const std::uint64_t hls_total = p.total_viewers - rtmp;

  const cdn::ResourceModel model;
  stats::print_banner("what the infrastructure carries at the peak");
  std::printf("RTMP cohort: %u viewers (joined in the first %.1f s) -- "
              "delay ~1.3 s, may comment\n",
              rtmp, time::to_seconds(audience[kSlots - 1].join));
  std::printf("HLS cohort:  %s viewers -- delay ~11 s, hearts only\n",
              stats::Table::integer(static_cast<std::int64_t>(hls_total))
                  .c_str());
  std::printf("ingest CPU:  %.0f%% of one core (RTMP fan-out is capped by "
              "the slot policy)\n",
              model.rtmp_cpu_percent(rtmp, 25.0));
  std::printf("edge CPU:    %.1f cores across the CDN for %s concurrent "
              "HLS pollers at the peak\n",
              (model.hls_cpu_percent(curve.peak, 25.0, 2.8, 3.0) -
               model.baseline_percent) / 100.0,
              stats::Table::integer(curve.peak).c_str());
  std::printf("\nIf instead everyone got RTMP interactivity: %.0f cores of "
              "frame-pushing at the peak -- the scalability wall that made "
              "Periscope cap interaction at %u viewers.\n",
              model.rtmp_cpu_percent(curve.peak, 25.0) / 100.0, kSlots);
  std::printf("(The §8 overlay tree would serve the same peak from ~24 "
              "forwarding sites; see bench_ablation_overlay_multicast.)\n");
  return 0;
}
